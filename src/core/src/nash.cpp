#include "subsidy/core/nash.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "subsidy/core/nash_batch.hpp"
#include "subsidy/numerics/linalg.hpp"
#include "subsidy/numerics/simd.hpp"

namespace subsidy::core {

namespace {

std::vector<double> initial_profile(const SubsidizationGame& game, std::vector<double> initial) {
  const std::size_t n = game.num_players();
  if (initial.empty()) return std::vector<double>(n, 0.0);
  if (initial.size() != n) {
    throw std::invalid_argument("nash solver: initial profile size mismatch");
  }
  for (auto& s : initial) s = std::clamp(s, 0.0, game.policy_cap());
  return initial;
}

}  // namespace

const char* to_string(NashRung rung) noexcept {
  switch (rung) {
    case NashRung::plain: return "plain";
    case NashRung::damped: return "damped";
    case NashRung::extragradient: return "extragradient";
  }
  return "unknown";
}

BestResponseSolver::BestResponseSolver(BestResponseOptions options) : options_(options) {
  if (options_.damping <= 0.0 || options_.damping > 1.0) {
    throw std::invalid_argument("BestResponseSolver: damping must be in (0, 1]");
  }
  if (options_.line_search_candidates < 1) {
    throw std::invalid_argument("BestResponseSolver: need >= 1 line-search candidate");
  }
}

NashResult BestResponseSolver::solve(const SubsidizationGame& game,
                                     std::vector<double> initial, double phi_hint) const {
  if (!num::simd::force_scalar()) {
    // Production path: the plane-evaluated lockstep engine (width-1 batch).
    // Results shift only within solver tolerance against the scalar
    // reference below (same Gauss-Seidel iteration, different line-search
    // candidate sequence).
    const NashBatchSolver engine(game.evaluator(), options_);
    NashBatchNode node;
    node.price = game.price();
    node.policy_cap = game.policy_cap();
    const std::vector<double> seed = initial_profile(game, std::move(initial));
    node.initial = seed;
    node.phi_hint = phi_hint;
    return engine.solve_one(node);
  }

  // Forced-scalar reference: the pre-engine per-candidate path, kept
  // bit-for-bit as the Nash layer's bitwise twin (SUBSIDY_FORCE_SCALAR).
  NashResult result;
  std::vector<double> s = initial_profile(game, std::move(initial));
  const std::size_t n = game.num_players();

  for (int iter = 1; iter <= options_.max_iterations; ++iter) {
    double max_change = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double br = game.best_response(i, s, phi_hint);
      phi_hint = -1.0;  // only the very first line search starts from it
      const double next = (1.0 - options_.damping) * s[i] + options_.damping * br;
      max_change = std::max(max_change, std::fabs(next - s[i]));
      s[i] = next;  // Gauss-Seidel: later players see the updated value.
    }
    result.iterations = iter;
    result.residual = max_change;
    if (max_change <= options_.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.subsidies = s;
  result.state = game.state(s);
  result.diagnostics.status =
      result.converged ? SolveStatus::ok : SolveStatus::max_iterations;
  result.diagnostics.plain_iterations = result.iterations;
  return result;
}

ExtragradientSolver::ExtragradientSolver(ExtragradientOptions options) : options_(options) {
  if (options_.initial_step <= 0.0) {
    throw std::invalid_argument("ExtragradientSolver: step must be > 0");
  }
}

NashResult ExtragradientSolver::solve(const SubsidizationGame& game,
                                      std::vector<double> initial, double phi_hint) const {
  NashResult result;
  std::vector<double> s = initial_profile(game, std::move(initial));
  const double q = game.policy_cap();
  double step = options_.initial_step;

  auto project = [q](std::vector<double> v) { return num::clamp(v, 0.0, q); };

  // Natural residual ||s - proj(s + u(s))||_inf: zero exactly at a solution
  // of VI(-u, [0,q]^N).
  auto natural_residual = [&](const std::vector<double>& point,
                              const std::vector<double>& u) {
    const std::vector<double> moved = project(num::axpy(point, 1.0, u));
    return num::distance_inf(point, moved);
  };

  // Khobotov/Marcotte adaptive extragradient: the predictor step is accepted
  // only when the field passes the local Lipschitz test
  //   step * ||u(mid) - u(s)|| <= kappa * ||mid - s||,
  // otherwise the step shrinks and the iteration retries. The natural
  // residual itself is NOT monotone along extragradient iterates, so it is
  // used only as the convergence measure, never as an acceptance rule.
  constexpr double kappa = 0.9;
  std::vector<double> u = game.marginal_utilities(s, phi_hint);
  double residual = natural_residual(s, u);

  for (int iter = 1; iter <= options_.max_iterations; ++iter) {
    result.iterations = iter;
    if (residual <= options_.tolerance) {
      result.converged = true;
      break;
    }
    // Predictor (ascent directions: F = -u, the VI step is s - step*F).
    const std::vector<double> mid = project(num::axpy(s, step, u));
    const std::vector<double> u_mid = game.marginal_utilities(mid);

    const double move = num::distance_inf(mid, s);
    const double field_change = num::distance_inf(u_mid, u);
    if (move > 0.0 && step * field_change > kappa * move &&
        step > options_.min_step) {
      step *= options_.step_decrease;
      continue;  // field too steep for this step; retry without moving
    }

    // Corrector uses the predictor's field.
    s = project(num::axpy(s, step, u_mid));
    u = game.marginal_utilities(s);
    residual = natural_residual(s, u);
    // Cautious step recovery keeps the method fast once past a stiff region.
    step = std::min(step * 1.1, options_.initial_step);
  }
  result.residual = residual;
  result.converged = result.converged || residual <= options_.tolerance;
  result.subsidies = s;
  result.state = game.state(s);
  result.diagnostics.status =
      result.converged ? SolveStatus::ok : SolveStatus::max_iterations;
  result.diagnostics.rung = NashRung::extragradient;
  result.diagnostics.extragradient_iterations = result.iterations;
  return result;
}

NashResult degenerate_nash_result(std::size_t num_players, SystemState state) {
  NashResult result;
  result.subsidies.assign(num_players, 0.0);
  result.state = std::move(state);
  result.iterations = 1;  // one best-response pass, every response 0
  result.converged = true;
  result.residual = 0.0;
  return result;
}

NashResult solve_nash(const SubsidizationGame& game, std::vector<double> initial,
                      const BestResponseOptions& br_options,
                      const ExtragradientOptions& eg_options, double phi_hint) {
  // Every rung is failure-aware: a rung whose inner solves collapse (a
  // thrown utilization failure on the scalar reference path, or a
  // status-carrying lane failure from the plane engine) yields a
  // non-converged result with diagnostics instead of aborting the ladder,
  // and the next rung still gets its retry.
  const auto attempt_rung = [&game](const auto& solver, std::vector<double> seed,
                                    double hint) {
    try {
      return solver.solve(game, seed, hint);
    } catch (const std::runtime_error& e) {
      NashResult failed;
      failed.subsidies = std::move(seed);
      failed.diagnostics.status = SolveStatus::bracket_failure;
      failed.diagnostics.detail = e.what();
      return failed;
    }
  };
  // A failed rung may carry no solved state; only a real state's utilization
  // is a usable warm-start hint for the next rung.
  const auto phi_of = [](const NashResult& attempt) {
    return attempt.state.providers.empty() ? -1.0 : attempt.state.utilization;
  };

  const BestResponseSolver br(br_options);
  NashResult result = attempt_rung(br, std::move(initial), phi_hint);
  result.diagnostics.rung = NashRung::plain;
  if (result.converged) return result;

  // Retry with damping before switching algorithms: undamped best-response
  // iterations can 2-cycle on strongly coupled players. The failed attempt's
  // own solved utilization seeds the retries, so a plane-seeded hint is
  // never discarded with the attempt.
  BestResponseOptions damped_options = br_options;
  damped_options.damping = 0.5;
  const int plain_iterations = result.diagnostics.plain_iterations;
  NashResult retry =
      attempt_rung(BestResponseSolver(damped_options), result.subsidies, phi_of(result));
  retry.diagnostics.rung = NashRung::damped;
  retry.diagnostics.plain_iterations = plain_iterations;
  retry.diagnostics.damped_iterations = retry.iterations;
  if (retry.converged) return retry;

  const int damped_iterations = retry.diagnostics.damped_iterations;
  NashResult final_result = attempt_rung(ExtragradientSolver(eg_options),
                                         std::move(retry.subsidies), phi_of(retry));
  final_result.diagnostics.rung = NashRung::extragradient;
  final_result.diagnostics.plain_iterations = plain_iterations;
  final_result.diagnostics.damped_iterations = damped_iterations;
  final_result.diagnostics.extragradient_iterations = final_result.iterations;
  return final_result;
}

}  // namespace subsidy::core
