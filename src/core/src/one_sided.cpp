#include "subsidy/core/one_sided.hpp"

#include <cmath>
#include <stdexcept>

namespace subsidy::core {

OneSidedPricingModel::OneSidedPricingModel(econ::Market market, UtilizationSolveOptions options)
    : evaluator_(std::move(market), options) {}

SystemState OneSidedPricingModel::evaluate(double price, double phi_hint) const {
  return evaluator_.evaluate_unsubsidized(price, phi_hint);
}

PriceEffects OneSidedPricingModel::price_effects(double price) const {
  const auto& market = evaluator_.market();
  const std::size_t n = market.num_providers();

  const SystemState state = evaluate(price);
  const std::vector<double> m = state.populations();
  const double phi = state.utilization;

  PriceEffects fx;
  fx.phi = phi;
  const double dg = evaluator_.gap_derivative(phi, m);

  // Equation (5): dphi/dp = (dg/dphi)^{-1} sum_k m_k'(p) lambda_k.
  double demand_shift = 0.0;
  std::vector<double> lambda(n);
  std::vector<double> dlambda(n);
  std::vector<double> dm_dp(n);
  for (std::size_t k = 0; k < n; ++k) {
    const auto& cp = market.provider(k);
    lambda[k] = cp.throughput->rate(phi);
    dlambda[k] = cp.throughput->derivative(phi);
    dm_dp[k] = cp.demand->derivative(price);
    demand_shift += dm_dp[k] * lambda[k];
  }
  fx.dphi_dp = demand_shift / dg;

  // Per-provider dtheta_i/dp = m_i'(p) lambda_i + m_i lambda_i'(phi) dphi/dp.
  fx.dtheta_i_dp.resize(n);
  fx.condition7_lhs.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    fx.dtheta_i_dp[i] = dm_dp[i] * lambda[i] + m[i] * dlambda[i] * fx.dphi_dp;
    total += fx.dtheta_i_dp[i];
  }
  fx.dtheta_dp = total;

  // Condition (7): theta_i increases with p iff
  //   eps^m_p / eps^lambda_phi < -eps^phi_p.
  const double eps_phi_p = (phi > 0.0) ? fx.dphi_dp * price / phi : 0.0;
  fx.condition7_rhs = -eps_phi_p;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& cp = market.provider(i);
    const double eps_m_p = cp.demand->elasticity(price);
    const double eps_lambda_phi = cp.throughput->elasticity(phi);
    fx.condition7_lhs[i] =
        (eps_lambda_phi != 0.0) ? eps_m_p / eps_lambda_phi
                                : std::numeric_limits<double>::infinity();
  }
  return fx;
}

bool OneSidedPricingModel::throughput_increases_with_price(double price,
                                                           std::size_t provider) const {
  const PriceEffects fx = price_effects(price);
  if (provider >= fx.condition7_lhs.size()) {
    throw std::out_of_range("throughput_increases_with_price: provider index out of range");
  }
  return fx.condition7_lhs[provider] < fx.condition7_rhs;
}

std::vector<SystemState> OneSidedPricingModel::sweep(const std::vector<double>& prices) const {
  // Batched: the whole grid is one node-major plane through
  // UtilizationSolver::solve_many — per pass, one vectorized exp per
  // exponential cluster serves every still-active grid node.
  return evaluator_.evaluate_unsubsidized_many(prices);
}

}  // namespace subsidy::core
