#include "subsidy/core/surplus.hpp"

#include <cmath>
#include <stdexcept>

namespace subsidy::core {

SurplusReport surplus_decomposition(const ModelEvaluator& evaluator,
                                    const SystemState& state) {
  const auto& market = evaluator.market();
  if (state.providers.size() != market.num_providers()) {
    throw std::invalid_argument("surplus_decomposition: state/market provider mismatch");
  }

  SurplusReport report;
  report.providers.resize(state.providers.size());
  for (std::size_t i = 0; i < state.providers.size(); ++i) {
    const CpState& cp = state.providers[i];
    ProviderSurplus& slice = report.providers[i];

    const double tail = market.provider(i).demand->surplus_integral(cp.effective_price);
    if (!std::isfinite(tail)) {
      report.finite = false;
      slice.user_surplus = tail;
    } else {
      slice.user_surplus = cp.per_user_rate * tail;
    }
    slice.cp_profit = cp.utility;
    slice.isp_receipts = state.price * cp.throughput;

    if (report.finite) report.user_surplus += slice.user_surplus;
    report.cp_profit += slice.cp_profit;
    report.paper_welfare += cp.profitability * cp.throughput;
    report.isp_revenue += slice.isp_receipts;
  }
  report.total_surplus = report.finite
                             ? report.user_surplus + report.cp_profit + report.isp_revenue
                             : std::numeric_limits<double>::infinity();
  return report;
}

}  // namespace subsidy::core
