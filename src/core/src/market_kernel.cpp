#include "subsidy/core/market_kernel.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "subsidy/numerics/simd.hpp"

namespace subsidy::core {

namespace {

/// Stable family rank used to order slots: exponential, power-law, delay,
/// then opaque curves.
int family_rank(const econ::ThroughputCurve& curve) {
  if (dynamic_cast<const econ::ExponentialThroughput*>(&curve) != nullptr) return 0;
  if (dynamic_cast<const econ::PowerLawThroughput*>(&curve) != nullptr) return 1;
  if (dynamic_cast<const econ::DelayThroughput*>(&curve) != nullptr) return 2;
  return 3;
}

}  // namespace

MarketKernel::MarketKernel(const econ::Market& market)
    : n_(market.num_providers()), mu_(market.capacity()) {
  const auto& providers = market.providers();

  // --- Throughput side: permute providers into family-contiguous slots, ---
  // --- exponential slots sorted by beta so equal betas share one exp().  ---
  struct SlotKey {
    int rank = 0;
    double beta = 0.0;
    std::size_t provider = 0;
  };
  std::vector<SlotKey> keys(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    const econ::ThroughputCurve& curve = *providers[i].throughput;
    keys[i].rank = family_rank(curve);
    keys[i].provider = i;
    if (const auto* e = dynamic_cast<const econ::ExponentialThroughput*>(&curve)) {
      keys[i].beta = e->beta();
    } else if (const auto* p = dynamic_cast<const econ::PowerLawThroughput*>(&curve)) {
      keys[i].beta = p->beta();
    } else if (const auto* d = dynamic_cast<const econ::DelayThroughput*>(&curve)) {
      keys[i].beta = d->beta();
    }
  }
  std::stable_sort(keys.begin(), keys.end(), [](const SlotKey& a, const SlotKey& b) {
    if (a.rank != b.rank) return a.rank < b.rank;
    // Group equal betas inside the exponential bucket only; the other
    // families gain nothing from reordering, so keep provider order.
    if (a.rank == 0 && a.beta != b.beta) return a.beta < b.beta;
    return false;  // stable_sort preserves provider order within the group
  });

  provider_of_slot_.resize(n_);
  slot_of_provider_.resize(n_);
  t_beta_.resize(n_);
  t_lambda0_.resize(n_);
  for (std::size_t slot = 0; slot < n_; ++slot) {
    const std::size_t i = keys[slot].provider;
    provider_of_slot_[slot] = i;
    slot_of_provider_[i] = slot;
    const econ::ThroughputCurve& curve = *providers[i].throughput;
    switch (keys[slot].rank) {
      case 0: {
        const auto& e = static_cast<const econ::ExponentialThroughput&>(curve);
        t_beta_[slot] = e.beta();
        t_lambda0_[slot] = e.lambda0();
        exp_end_ = slot + 1;
        break;
      }
      case 1: {
        const auto& p = static_cast<const econ::PowerLawThroughput&>(curve);
        t_beta_[slot] = p.beta();
        t_lambda0_[slot] = p.lambda0();
        pow_end_ = slot + 1;
        break;
      }
      case 2: {
        const auto& d = static_cast<const econ::DelayThroughput&>(curve);
        t_beta_[slot] = d.beta();
        t_lambda0_[slot] = d.lambda0();
        delay_end_ = slot + 1;
        break;
      }
      default:
        opaque_curves_.push_back(providers[i].throughput);
        break;
    }
  }
  pow_end_ = std::max(pow_end_, exp_end_);
  delay_end_ = std::max(delay_end_, pow_end_);

  // Exponential clusters: maximal runs of equal beta.
  for (std::size_t slot = 0; slot < exp_end_; ++slot) {
    if (slot == 0 || t_beta_[slot] != t_beta_[slot - 1]) {
      cluster_begin_.push_back(slot);
      cluster_beta_.push_back(t_beta_[slot]);
    }
  }
  cluster_begin_.push_back(exp_end_);

  // --- Demand side (provider order). ---
  d_family_.resize(n_, DemandFamily::opaque);
  d_alpha_.resize(n_, 0.0);
  d_scale_.resize(n_, 0.0);
  d_shift_.resize(n_, 0.0);
  d_opaque_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    const econ::DemandCurve* curve = providers[i].demand.get();
    if (const auto* e = dynamic_cast<const econ::ExponentialDemand*>(curve)) {
      d_family_[i] = DemandFamily::exponential;
      d_alpha_[i] = e->alpha();
      d_scale_[i] = e->scale();
    } else if (const auto* l = dynamic_cast<const econ::LogitDemand*>(curve)) {
      d_family_[i] = DemandFamily::logit;
      d_alpha_[i] = l->k();
      d_scale_[i] = l->m0();
      d_shift_[i] = l->t0();
    } else if (const auto* iso = dynamic_cast<const econ::IsoelasticDemand*>(curve)) {
      d_family_[i] = DemandFamily::isoelastic;
      d_alpha_[i] = iso->eps();
      d_scale_[i] = iso->m0();
    } else if (const auto* lin = dynamic_cast<const econ::LinearDemand*>(curve)) {
      d_family_[i] = DemandFamily::linear;
      d_alpha_[i] = lin->t_max();
      d_scale_[i] = lin->m0();
    } else {
      d_opaque_[i] = providers[i].demand;
    }
  }

  // --- Utilization model. ---
  const econ::UtilizationModel& model = market.utilization_model();
  if (dynamic_cast<const econ::LinearUtilization*>(&model) != nullptr) {
    util_family_ = UtilizationFamily::linear;
  } else if (dynamic_cast<const econ::DelayUtilization*>(&model) != nullptr) {
    util_family_ = UtilizationFamily::delay;
  } else if (const auto* p = dynamic_cast<const econ::PowerUtilization*>(&model)) {
    util_family_ = UtilizationFamily::power;
    gamma_ = p->gamma();
  } else {
    util_family_ = UtilizationFamily::opaque;
  }
  util_model_ = market.utilization_model_ptr();
}

std::uint64_t MarketKernel::fingerprint() const noexcept {
  // FNV-1a/64 over every compiled bucket, walked in a fixed order. Doubles
  // contribute their exact bit patterns — two markets whose coefficients
  // differ in the last ulp must key different cache entries, because the
  // solver results differ too.
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix_bytes = [&h](const void* data, std::size_t size) noexcept {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t k = 0; k < size; ++k) {
      h ^= bytes[k];
      h *= 1099511628211ULL;
    }
  };
  const auto mix_u64 = [&mix_bytes](std::uint64_t v) noexcept { mix_bytes(&v, sizeof v); };
  const auto mix_f64 = [&mix_u64](double v) noexcept {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    mix_u64(bits);
  };

  mix_u64(n_);
  mix_f64(mu_);
  mix_u64(exp_end_);
  mix_u64(pow_end_);
  mix_u64(delay_end_);
  for (std::size_t slot = 0; slot < n_; ++slot) {
    mix_u64(provider_of_slot_[slot]);
    mix_f64(t_beta_[slot]);
    mix_f64(t_lambda0_[slot]);
  }
  for (std::size_t b : cluster_begin_) mix_u64(b);
  for (double beta : cluster_beta_) mix_f64(beta);
  // Opaque throughput curves: instance identity stands in for the (unknown)
  // coefficients — conservative, never a false equality.
  for (const auto& curve : opaque_curves_) {
    mix_u64(static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(curve.get())));
  }
  for (std::size_t i = 0; i < n_; ++i) {
    mix_u64(static_cast<std::uint64_t>(d_family_[i]));
    mix_f64(d_alpha_[i]);
    mix_f64(d_scale_[i]);
    mix_f64(d_shift_[i]);
    if (d_opaque_[i] != nullptr) {
      mix_u64(static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(d_opaque_[i].get())));
    }
  }
  mix_u64(static_cast<std::uint64_t>(util_family_));
  mix_f64(gamma_);
  if (util_family_ == UtilizationFamily::opaque) {
    mix_u64(static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(util_model_.get())));
  }
  return h;
}

void MarketKernel::check_population_size(std::size_t size) const {
  if (size != n_) {
    throw std::invalid_argument("MarketKernel: population vector size mismatch");
  }
}

void MarketKernel::check_phi(double phi) const {
  if (!(phi >= 0.0)) {
    throw std::invalid_argument("MarketKernel: phi must be >= 0");
  }
}

void MarketKernel::check_binding(const PopulationBinding& b) const {
  if (b.data_ == nullptr || b.num_slots_ != n_) {
    throw std::invalid_argument(
        "MarketKernel: binding was not produced by bind() on this kernel");
  }
}

// --- Binding -------------------------------------------------------------

void MarketKernel::bind(std::span<const double> populations,
                        PopulationBinding& binding) const {
  check_population_size(populations.size());
  const std::size_t num_clusters = cluster_beta_.size();
  // Layout: [0, C) exponential cluster weights; [C, C + n - exp_end_)
  // per-slot weights (m * lambda0) for power-law/delay slots and raw
  // populations for opaque slots.
  double* data = binding.ensure(num_clusters + (n_ - exp_end_));
  for (std::size_t c = 0; c < num_clusters; ++c) {
    double w = 0.0;
    for (std::size_t slot = cluster_begin_[c]; slot < cluster_begin_[c + 1]; ++slot) {
      w += populations[provider_of_slot_[slot]] * t_lambda0_[slot];
    }
    data[c] = w;
  }
  double* tail = data + num_clusters;
  for (std::size_t slot = exp_end_; slot < delay_end_; ++slot) {
    tail[slot - exp_end_] = populations[provider_of_slot_[slot]] * t_lambda0_[slot];
  }
  for (std::size_t slot = delay_end_; slot < n_; ++slot) {
    tail[slot - exp_end_] = populations[provider_of_slot_[slot]];
  }
  binding.num_slots_ = n_;
}

double MarketKernel::aggregate_demand_bound(double phi,
                                            const PopulationBinding& b) const {
  check_binding(b);
  const double* w = b.data_;
  double total = 0.0;
  const std::size_t num_clusters = cluster_beta_.size();
  if (phi == 0.0) {
    // exp(-beta * 0) == 1, pow(1, -beta) == 1 and 1/(1 + beta * 0) == 1
    // exactly (IEEE), so the cold-start probes at zero skip the
    // transcendentals while staying bit-identical.
    for (std::size_t c = 0; c < num_clusters; ++c) total += w[c];
    const double* tail = w + num_clusters;
    for (std::size_t slot = exp_end_; slot < delay_end_; ++slot) {
      total += tail[slot - exp_end_];
    }
    for (std::size_t slot = delay_end_; slot < n_; ++slot) {
      total += tail[slot - exp_end_] * opaque_curves_[slot - delay_end_]->rate(phi);
    }
    return total;
  }
  for (std::size_t c = 0; c < num_clusters; ++c) {
    total += w[c] * num::simd::sexp(-cluster_beta_[c] * phi);
  }
  const double* tail = w + num_clusters;
  for (std::size_t slot = exp_end_; slot < pow_end_; ++slot) {
    total += tail[slot - exp_end_] * std::pow(1.0 + phi, -t_beta_[slot]);
  }
  for (std::size_t slot = pow_end_; slot < delay_end_; ++slot) {
    total += tail[slot - exp_end_] / (1.0 + t_beta_[slot] * phi);
  }
  for (std::size_t slot = delay_end_; slot < n_; ++slot) {
    total += tail[slot - exp_end_] * opaque_curves_[slot - delay_end_]->rate(phi);
  }
  return total;
}

double MarketKernel::gap_bound(double phi, const PopulationBinding& b) const {
  return inverse_throughput(phi) - aggregate_demand_bound(phi, b);
}

MarketKernel::GapValue MarketKernel::gap_with_derivative_bound(
    double phi, const PopulationBinding& b) const {
  check_binding(b);
  const double* w = b.data_;
  double demand = 0.0;
  double slope = 0.0;
  const std::size_t num_clusters = cluster_beta_.size();
  for (std::size_t c = 0; c < num_clusters; ++c) {
    const double term = w[c] * num::simd::sexp(-cluster_beta_[c] * phi);
    demand += term;
    slope += -cluster_beta_[c] * term;
  }
  const double* tail = w + num_clusters;
  for (std::size_t slot = exp_end_; slot < pow_end_; ++slot) {
    const double term = tail[slot - exp_end_] * std::pow(1.0 + phi, -t_beta_[slot]);
    demand += term;
    slope += -t_beta_[slot] * term / (1.0 + phi);
  }
  for (std::size_t slot = pow_end_; slot < delay_end_; ++slot) {
    const double denom = 1.0 + t_beta_[slot] * phi;
    const double term = tail[slot - exp_end_] / denom;
    demand += term;
    slope += -t_beta_[slot] * term / denom;
  }
  for (std::size_t slot = delay_end_; slot < n_; ++slot) {
    const econ::ThroughputCurve& curve = *opaque_curves_[slot - delay_end_];
    const double m = tail[slot - exp_end_];
    demand += m * curve.rate(phi);
    slope += m * curve.derivative(phi);
  }
  GapValue out;
  out.g = inverse_throughput(phi) - demand;
  out.dg = inverse_throughput_dphi(phi) - slope;
  return out;
}

double MarketKernel::aggregate_demand(double phi,
                                      std::span<const double> populations) const {
  PopulationBinding binding;
  bind(populations, binding);
  return aggregate_demand_bound(phi, binding);
}

double MarketKernel::gap(double phi, std::span<const double> populations) const {
  PopulationBinding binding;
  bind(populations, binding);
  return gap_bound(phi, binding);
}

double MarketKernel::gap_derivative(double phi, std::span<const double> populations) const {
  PopulationBinding binding;
  bind(populations, binding);
  return gap_with_derivative_bound(phi, binding).dg;
}

void MarketKernel::gap_many(std::span<const double> phis,
                            std::span<const double> populations,
                            std::span<double> out) const {
  if (out.size() != phis.size()) {
    throw std::invalid_argument("MarketKernel::gap_many: output size mismatch");
  }
  PopulationBinding binding;
  bind(populations, binding);
  for (std::size_t k = 0; k < phis.size(); ++k) {
    out[k] = gap_bound(phis[k], binding);
  }
}

// --- Node-major batch planes ---------------------------------------------
//
// The plane evaluators replicate the per-node accumulation of
// aggregate_demand_bound / gap_with_derivative_bound operation for
// operation (clusters in order, then power-law, delay and opaque slots, then
// Theta), so that with the scalar exp path every column is bit-identical to
// the corresponding *_bound evaluation. Only the exponential-cluster stage
// dispatches: the vector path evaluates it four nodes at a time with
// num::simd::vexp, everything downstream (the rare non-exponential slots and
// the Theta finalize) is shared between both modes.

void MarketKernel::check_batch(const BatchBinding& b, std::size_t count) const {
  // num_rows_ must match too: a same-provider-count kernel with a different
  // cluster structure would otherwise index rows past the allocation.
  if (b.num_slots_ != n_ || b.planes_.empty() ||
      b.num_rows_ != cluster_beta_.size() + (n_ - exp_end_)) {
    throw std::invalid_argument(
        "MarketKernel: batch binding was not produced by batch_reserve() on this kernel");
  }
  if (count > b.capacity_) {
    throw std::invalid_argument("MarketKernel: batch evaluation exceeds bound plane");
  }
}

void MarketKernel::batch_reserve(std::size_t num_nodes, BatchBinding& binding) const {
  const std::size_t rows = cluster_beta_.size() + (n_ - exp_end_);
  // Pad each row to a multiple of the widest vector so wide weight loads on
  // a ragged tail stay inside the allocation (the padding lanes are owned,
  // finite garbage whose results are discarded at store time).
  constexpr std::size_t kPad = num::simd::kMaxLanes;
  const std::size_t padded = (std::max<std::size_t>(1, num_nodes) + kPad - 1) / kPad * kPad;
  binding.num_rows_ = rows;
  binding.num_slots_ = n_;
  if (binding.capacity_ < padded) binding.capacity_ = padded;
  // Size against the (possibly retained, larger) capacity, not `padded`: the
  // capacity is the row stride, so a reused binding that kept a wide stride
  // from an earlier batch must back every row at that stride even when this
  // kernel has more rows than the last one.
  if (binding.planes_.size() < rows * binding.capacity_) {
    binding.planes_.assign(std::max<std::size_t>(1, rows * binding.capacity_), 0.0);
  }
}

double MarketKernel::batch_bind_column(std::size_t column, std::span<const double> populations,
                                       BatchBinding& binding) const {
  check_population_size(populations.size());
  check_batch(binding, column + 1);
  const std::size_t num_clusters = cluster_beta_.size();
  const std::size_t stride = binding.capacity_;
  double* data = binding.planes_.data();
  // Same folds as bind() — cluster weights, then per-slot products for the
  // power-law/delay slots and raw populations for the opaque slots — with
  // the phi = 0 demand (the fast path of aggregate_demand_bound: every
  // throughput factor is exactly 1) summed on the way through.
  double demand0 = 0.0;
  for (std::size_t c = 0; c < num_clusters; ++c) {
    double w = 0.0;
    for (std::size_t slot = cluster_begin_[c]; slot < cluster_begin_[c + 1]; ++slot) {
      w += populations[provider_of_slot_[slot]] * t_lambda0_[slot];
    }
    data[c * stride + column] = w;
    demand0 += w;
  }
  for (std::size_t slot = exp_end_; slot < delay_end_; ++slot) {
    const double w = populations[provider_of_slot_[slot]] * t_lambda0_[slot];
    data[(num_clusters + slot - exp_end_) * stride + column] = w;
    demand0 += w;
  }
  for (std::size_t slot = delay_end_; slot < n_; ++slot) {
    const double m = populations[provider_of_slot_[slot]];
    data[(num_clusters + slot - exp_end_) * stride + column] = m;
    demand0 += m * opaque_curves_[slot - delay_end_]->rate(0.0);
  }
  return demand0;
}

void MarketKernel::batch_copy_column(BatchBinding& binding, std::size_t dst,
                                     std::size_t src) const {
  check_batch(binding, std::max(dst, src) + 1);
  if (dst == src) return;
  const std::size_t stride = binding.capacity_;
  double* data = binding.planes_.data();
  for (std::size_t r = 0; r < binding.num_rows_; ++r) {
    data[r * stride + dst] = data[r * stride + src];
  }
}

void MarketKernel::batch_clusters_scalar(const BatchBinding& binding,
                                         std::span<const double> phis, double* dem,
                                         double* slp) const {
  // Node-outer, cluster-inner: per node the accumulation order matches
  // aggregate_demand_bound / gap_with_derivative_bound exactly.
  const std::size_t num_clusters = cluster_beta_.size();
  const std::size_t stride = binding.capacity_;
  const double* data = binding.planes_.data();
  for (std::size_t j = 0; j < phis.size(); ++j) {
    const double phi = phis[j];
    double d = 0.0;
    double s = 0.0;
    for (std::size_t c = 0; c < num_clusters; ++c) {
      const double term = data[c * stride + j] * num::simd::sexp(-cluster_beta_[c] * phi);
      d += term;
      s += -cluster_beta_[c] * term;
    }
    dem[j] = d;
    if (slp != nullptr) slp[j] = s;
  }
}

#if SUBSIDY_SIMD_VECTOR_BACKEND

namespace {

/// Width-templated cluster stage: dem/slp accumulate w_c * exp(-beta_c phi)
/// and its phi-slope across all clusters, W nodes at a time. One definition
/// serves the baseline build and the AVX2 clone below; per-lane arithmetic
/// is width-independent, so both produce the same bits (this TU compiles
/// with -ffp-contract=off to keep FMA out of the wider lowering).
///
/// kFuseLinearTheta specializes the paper's primary configuration — every
/// throughput curve exponential, linear utilization — by folding the Theta
/// flip (g = phi mu - demand, dg = mu - slope, the exact linear-family
/// expressions of batch_finalize_theta) into the same register pass, so a
/// whole Newton plane touches each output cache line once.
template <std::size_t W, bool kFuseLinearTheta>
SUBSIDY_SIMD_FORCE_INLINE void clusters_stage(const double* data, std::size_t stride,
                                              const double* betas, std::size_t num_clusters,
                                              double mu, const double* phis, std::size_t count,
                                              double* dem, double* slp) noexcept {
  namespace simd = num::simd;
  using vd = simd::vdouble_w<W>;
  const vd vmu = simd::vsplat_w<W>(mu);
  const auto group = [&](vd phi, std::size_t base, double* dout, double* sout) {
    vd d = simd::vsplat_w<W>(0.0);
    vd s = simd::vsplat_w<W>(0.0);
    for (std::size_t c = 0; c < num_clusters; ++c) {
      // The c -> c+1 step jumps a whole plane row (stride doubles), which
      // the hardware prefetcher does not follow once the plane outgrows L2
      // (the 2048-node sizes); ask for the next row's group up front, and
      // for this row's *next* group so the line is in flight a whole
      // cluster loop before its load. Pure latency hints — bits are
      // untouched.
      if (c + 1 < num_clusters) __builtin_prefetch(data + (c + 1) * stride + base, 0, 3);
      __builtin_prefetch(data + c * stride + base + W, 0, 3);
      const vd neg_beta = simd::vsplat_w<W>(-betas[c]);
      const vd e = simd::vexp_w<W>(neg_beta * phi);
      const vd term = simd::vload_w<W>(data + c * stride + base) * e;
      d += term;
      s += neg_beta * term;
    }
    if constexpr (kFuseLinearTheta) {
      d = phi * vmu - d;
      s = vmu - s;
    }
    simd::vstore_w<W>(dout, d);
    if (sout != nullptr) simd::vstore_w<W>(sout, s);
  };
  std::size_t j = 0;
  for (; j + W <= count; j += W) {
    group(simd::vload_w<W>(phis + j), j, dem + j, slp == nullptr ? nullptr : slp + j);
  }
  if (j < count) {
    // Ragged tail: pad phi with the last value and run the same vector
    // kernel (lane-wise ops keep every node's bits position-independent);
    // the weight rows are padded by batch_reserve, so the wide loads stay
    // in bounds and the surplus lanes are simply not copied out.
    double phibuf[W];
    double dbuf[W];
    double sbuf[W];
    for (double& b : phibuf) b = phis[count - 1];
    for (std::size_t k = j; k < count; ++k) phibuf[k - j] = phis[k];
    group(simd::vload_w<W>(phibuf), j, dbuf, slp == nullptr ? nullptr : sbuf);
    for (std::size_t k = j; k < count; ++k) {
      dem[k] = dbuf[k - j];
      if (slp != nullptr) slp[k] = sbuf[k - j];
    }
  }
}

#if defined(__x86_64__) && !defined(__AVX2__)
__attribute__((target("avx2"))) void clusters_stage_avx2(
    const double* data, std::size_t stride, const double* betas, std::size_t num_clusters,
    const double* phis, std::size_t count, double* dem, double* slp) noexcept {
  clusters_stage<4, false>(data, stride, betas, num_clusters, 0.0, phis, count, dem, slp);
}

__attribute__((target("avx2"))) void clusters_stage_linear_avx2(
    const double* data, std::size_t stride, const double* betas, std::size_t num_clusters,
    double mu, const double* phis, std::size_t count, double* dem, double* slp) noexcept {
  clusters_stage<4, true>(data, stride, betas, num_clusters, mu, phis, count, dem, slp);
}
#endif

#if defined(__x86_64__) && !defined(__AVX512F__)
__attribute__((target("avx512f"))) void clusters_stage_avx512(
    const double* data, std::size_t stride, const double* betas, std::size_t num_clusters,
    const double* phis, std::size_t count, double* dem, double* slp) noexcept {
  clusters_stage<8, false>(data, stride, betas, num_clusters, 0.0, phis, count, dem, slp);
}

__attribute__((target("avx512f"))) void clusters_stage_linear_avx512(
    const double* data, std::size_t stride, const double* betas, std::size_t num_clusters,
    double mu, const double* phis, std::size_t count, double* dem, double* slp) noexcept {
  clusters_stage<8, true>(data, stride, betas, num_clusters, mu, phis, count, dem, slp);
}
#endif

}  // namespace

void MarketKernel::batch_clusters_vector(const BatchBinding& binding,
                                         std::span<const double> phis, double* dem,
                                         double* slp) const {
  const double* data = binding.planes_.data();
  const std::size_t stride = binding.capacity_;
  const double* betas = cluster_beta_.data();
  const std::size_t num_clusters = cluster_beta_.size();
#if defined(__x86_64__) && !defined(__AVX512F__)
  if (num::simd::cpu_has_avx512()) {
    clusters_stage_avx512(data, stride, betas, num_clusters, phis.data(), phis.size(),
                          dem, slp);
    return;
  }
#endif
#if defined(__x86_64__) && !defined(__AVX2__)
  if (num::simd::cpu_has_avx2()) {
    clusters_stage_avx2(data, stride, betas, num_clusters, phis.data(), phis.size(), dem,
                        slp);
    return;
  }
#endif
  clusters_stage<num::simd::kLanes, false>(data, stride, betas, num_clusters, 0.0,
                                           phis.data(), phis.size(), dem, slp);
}

/// The fully fused fast path: pure-exponential market + linear utilization.
/// Writes finished g/dg (not demand/slope); returns false when the market
/// shape or the active backend cannot take it.
bool MarketKernel::batch_gap_fused_linear(const BatchBinding& binding,
                                          std::span<const double> phis, double* g,
                                          double* dg) const {
  if (exp_end_ != n_ || util_family_ != UtilizationFamily::linear) return false;
  if (num::simd::force_scalar()) return false;
  for (std::size_t j = 0; j < phis.size(); ++j) check_phi(phis[j]);
  const double* data = binding.planes_.data();
  const std::size_t stride = binding.capacity_;
  const double* betas = cluster_beta_.data();
  const std::size_t num_clusters = cluster_beta_.size();
#if defined(__x86_64__) && !defined(__AVX512F__)
  if (num::simd::cpu_has_avx512()) {
    clusters_stage_linear_avx512(data, stride, betas, num_clusters, mu_, phis.data(),
                                 phis.size(), g, dg);
    return true;
  }
#endif
#if defined(__x86_64__) && !defined(__AVX2__)
  if (num::simd::cpu_has_avx2()) {
    clusters_stage_linear_avx2(data, stride, betas, num_clusters, mu_, phis.data(),
                               phis.size(), g, dg);
    return true;
  }
#endif
  clusters_stage<num::simd::kLanes, true>(data, stride, betas, num_clusters, mu_,
                                          phis.data(), phis.size(), g, dg);
  return true;
}

#endif  // SUBSIDY_SIMD_VECTOR_BACKEND

void MarketKernel::batch_tail_slots(const BatchBinding& binding,
                                    std::span<const double> phis, double* dem,
                                    double* slp) const {
  const std::size_t num_clusters = cluster_beta_.size();
  const std::size_t stride = binding.capacity_;
  const double* data = binding.planes_.data();
  for (std::size_t slot = exp_end_; slot < pow_end_; ++slot) {
    const double* w = data + (num_clusters + slot - exp_end_) * stride;
    const double beta = t_beta_[slot];
    for (std::size_t j = 0; j < phis.size(); ++j) {
      const double term = w[j] * std::pow(1.0 + phis[j], -beta);
      dem[j] += term;
      if (slp != nullptr) slp[j] += -beta * term / (1.0 + phis[j]);
    }
  }
  for (std::size_t slot = pow_end_; slot < delay_end_; ++slot) {
    const double* w = data + (num_clusters + slot - exp_end_) * stride;
    const double beta = t_beta_[slot];
    for (std::size_t j = 0; j < phis.size(); ++j) {
      const double denom = 1.0 + beta * phis[j];
      const double term = w[j] / denom;
      dem[j] += term;
      if (slp != nullptr) slp[j] += -beta * term / denom;
    }
  }
  for (std::size_t slot = delay_end_; slot < n_; ++slot) {
    const double* w = data + (num_clusters + slot - exp_end_) * stride;
    const econ::ThroughputCurve& curve = *opaque_curves_[slot - delay_end_];
    for (std::size_t j = 0; j < phis.size(); ++j) {
      dem[j] += w[j] * curve.rate(phis[j]);
      if (slp != nullptr) slp[j] += w[j] * curve.derivative(phis[j]);
    }
  }
}

void MarketKernel::batch_finalize_theta(std::span<const double> phis, double* g,
                                        double* dg) const {
  // g/dg arrive holding aggregate demand and its slope; flip them into
  // Theta - demand with the per-family Theta hoisted out of the loop. The
  // formulas replicate inverse_throughput / inverse_throughput_dphi term for
  // term.
  if (util_family_ != UtilizationFamily::opaque) {
    for (std::size_t j = 0; j < phis.size(); ++j) check_phi(phis[j]);
  }
  switch (util_family_) {
    case UtilizationFamily::linear:
      for (std::size_t j = 0; j < phis.size(); ++j) g[j] = phis[j] * mu_ - g[j];
      if (dg != nullptr) {
        for (std::size_t j = 0; j < phis.size(); ++j) dg[j] = mu_ - dg[j];
      }
      return;
    case UtilizationFamily::delay:
      for (std::size_t j = 0; j < phis.size(); ++j) {
        g[j] = mu_ * phis[j] / (1.0 + phis[j]) - g[j];
      }
      if (dg != nullptr) {
        for (std::size_t j = 0; j < phis.size(); ++j) {
          const double denom = (1.0 + phis[j]) * (1.0 + phis[j]);
          dg[j] = mu_ / denom - dg[j];
        }
      }
      return;
    case UtilizationFamily::power:
      for (std::size_t j = 0; j < phis.size(); ++j) {
        g[j] = mu_ * std::pow(phis[j], 1.0 / gamma_) - g[j];
      }
      if (dg != nullptr) {
        for (std::size_t j = 0; j < phis.size(); ++j) {
          dg[j] = inverse_throughput_dphi(phis[j]) - dg[j];  // phi=0 one-sided limit
        }
      }
      return;
    case UtilizationFamily::opaque:
      break;
  }
  for (std::size_t j = 0; j < phis.size(); ++j) {
    g[j] = util_model_->inverse_throughput(phis[j], mu_) - g[j];
  }
  if (dg != nullptr) {
    for (std::size_t j = 0; j < phis.size(); ++j) {
      dg[j] = util_model_->inverse_throughput_dphi(phis[j], mu_) - dg[j];
    }
  }
}

void MarketKernel::batch_gap(const BatchBinding& binding, std::span<const double> phis,
                             std::span<double> g) const {
  check_batch(binding, phis.size());
  if (g.size() != phis.size()) {
    throw std::invalid_argument("MarketKernel::batch_gap: output size mismatch");
  }
#if SUBSIDY_SIMD_VECTOR_BACKEND
  if (!num::simd::force_scalar()) {
    if (batch_gap_fused_linear(binding, phis, g.data(), nullptr)) return;
    batch_clusters_vector(binding, phis, g.data(), nullptr);
  } else {
    batch_clusters_scalar(binding, phis, g.data(), nullptr);
  }
#else
  batch_clusters_scalar(binding, phis, g.data(), nullptr);
#endif
  batch_tail_slots(binding, phis, g.data(), nullptr);
  batch_finalize_theta(phis, g.data(), nullptr);
}

void MarketKernel::batch_gap_with_derivative(const BatchBinding& binding,
                                             std::span<const double> phis,
                                             std::span<double> g, std::span<double> dg) const {
  check_batch(binding, phis.size());
  if (g.size() != phis.size() || dg.size() != phis.size()) {
    throw std::invalid_argument(
        "MarketKernel::batch_gap_with_derivative: output size mismatch");
  }
#if SUBSIDY_SIMD_VECTOR_BACKEND
  if (!num::simd::force_scalar()) {
    if (batch_gap_fused_linear(binding, phis, g.data(), dg.data())) return;
    batch_clusters_vector(binding, phis, g.data(), dg.data());
  } else {
    batch_clusters_scalar(binding, phis, g.data(), dg.data());
  }
#else
  batch_clusters_scalar(binding, phis, g.data(), dg.data());
#endif
  batch_tail_slots(binding, phis, g.data(), dg.data());
  batch_finalize_theta(phis, g.data(), dg.data());
}

// --- Throughput curves ---------------------------------------------------

double MarketKernel::rate(std::size_t i, double phi) const {
  if (i >= n_) throw std::out_of_range("MarketKernel::rate: provider index out of range");
  const std::size_t slot = slot_of_provider_[i];
  if (slot < exp_end_) return t_lambda0_[slot] * num::simd::sexp(-t_beta_[slot] * phi);
  if (slot < pow_end_) return t_lambda0_[slot] * std::pow(1.0 + phi, -t_beta_[slot]);
  if (slot < delay_end_) return t_lambda0_[slot] / (1.0 + t_beta_[slot] * phi);
  return opaque_curves_[slot - delay_end_]->rate(phi);
}

void MarketKernel::rate_and_slope(std::size_t i, double phi, double& lambda,
                                  double& dlambda) const {
  if (i >= n_) {
    throw std::out_of_range("MarketKernel::rate_and_slope: provider index out of range");
  }
  const std::size_t slot = slot_of_provider_[i];
  if (slot < exp_end_) {
    lambda = t_lambda0_[slot] * num::simd::sexp(-t_beta_[slot] * phi);
    dlambda = -t_beta_[slot] * lambda;
  } else if (slot < pow_end_) {
    lambda = t_lambda0_[slot] * std::pow(1.0 + phi, -t_beta_[slot]);
    dlambda = -t_beta_[slot] * lambda / (1.0 + phi);
  } else if (slot < delay_end_) {
    const double denom = 1.0 + t_beta_[slot] * phi;
    lambda = t_lambda0_[slot] / denom;
    dlambda = -t_lambda0_[slot] * t_beta_[slot] / (denom * denom);
  } else {
    const econ::ThroughputCurve& curve = *opaque_curves_[slot - delay_end_];
    lambda = curve.rate(phi);
    dlambda = curve.derivative(phi);
  }
}

void MarketKernel::rates(double phi, std::span<double> lambda) const {
  check_population_size(lambda.size());
  const std::size_t num_clusters = cluster_beta_.size();
  for (std::size_t c = 0; c < num_clusters; ++c) {
    const double e = num::simd::sexp(-cluster_beta_[c] * phi);
    for (std::size_t slot = cluster_begin_[c]; slot < cluster_begin_[c + 1]; ++slot) {
      lambda[provider_of_slot_[slot]] = t_lambda0_[slot] * e;
    }
  }
  for (std::size_t slot = exp_end_; slot < pow_end_; ++slot) {
    lambda[provider_of_slot_[slot]] = t_lambda0_[slot] * std::pow(1.0 + phi, -t_beta_[slot]);
  }
  for (std::size_t slot = pow_end_; slot < delay_end_; ++slot) {
    lambda[provider_of_slot_[slot]] = t_lambda0_[slot] / (1.0 + t_beta_[slot] * phi);
  }
  for (std::size_t slot = delay_end_; slot < n_; ++slot) {
    lambda[provider_of_slot_[slot]] = opaque_curves_[slot - delay_end_]->rate(phi);
  }
}

void MarketKernel::rates_and_slopes(double phi, std::span<double> lambda,
                                    std::span<double> dlambda) const {
  check_population_size(lambda.size());
  check_population_size(dlambda.size());
  const std::size_t num_clusters = cluster_beta_.size();
  for (std::size_t c = 0; c < num_clusters; ++c) {
    const double e = num::simd::sexp(-cluster_beta_[c] * phi);
    const double beta = cluster_beta_[c];
    for (std::size_t slot = cluster_begin_[c]; slot < cluster_begin_[c + 1]; ++slot) {
      const std::size_t i = provider_of_slot_[slot];
      lambda[i] = t_lambda0_[slot] * e;
      dlambda[i] = -beta * lambda[i];
    }
  }
  for (std::size_t slot = exp_end_; slot < pow_end_; ++slot) {
    const std::size_t i = provider_of_slot_[slot];
    lambda[i] = t_lambda0_[slot] * std::pow(1.0 + phi, -t_beta_[slot]);
    dlambda[i] = -t_beta_[slot] * lambda[i] / (1.0 + phi);
  }
  for (std::size_t slot = pow_end_; slot < delay_end_; ++slot) {
    const std::size_t i = provider_of_slot_[slot];
    const double denom = 1.0 + t_beta_[slot] * phi;
    lambda[i] = t_lambda0_[slot] / denom;
    dlambda[i] = -t_lambda0_[slot] * t_beta_[slot] / (denom * denom);
  }
  for (std::size_t slot = delay_end_; slot < n_; ++slot) {
    const std::size_t i = provider_of_slot_[slot];
    const econ::ThroughputCurve& curve = *opaque_curves_[slot - delay_end_];
    lambda[i] = curve.rate(phi);
    dlambda[i] = curve.derivative(phi);
  }
}

// --- Demand curves -------------------------------------------------------
//
// Each family replicates the corresponding DemandCurve subclass's analytic
// expressions exactly (same operations, same order), so the compiled path is
// bit-identical to the virtual path for every built-in family.

double MarketKernel::demand_value(std::size_t i, double t) const {
  switch (d_family_[i]) {
    case DemandFamily::exponential:
      return d_scale_[i] * num::simd::sexp(-d_alpha_[i] * t);
    case DemandFamily::logit:
      return d_scale_[i] / (1.0 + num::simd::sexp(d_alpha_[i] * (t - d_shift_[i])));
    case DemandFamily::isoelastic:
      if (t <= 0.0) return d_scale_[i];
      return d_scale_[i] * std::pow(1.0 + t, -d_alpha_[i]);
    case DemandFamily::linear:
      if (t <= 0.0) return d_scale_[i];
      if (t >= d_alpha_[i]) return 0.0;
      return d_scale_[i] * (1.0 - t / d_alpha_[i]);
    case DemandFamily::opaque:
      break;
  }
  return d_opaque_[i]->population(t);
}

void MarketKernel::demand_value_and_slope(std::size_t i, double t, double& m,
                                          double& dm) const {
  switch (d_family_[i]) {
    case DemandFamily::exponential:
      m = d_scale_[i] * num::simd::sexp(-d_alpha_[i] * t);
      dm = -d_alpha_[i] * m;
      return;
    case DemandFamily::logit: {
      const double e = num::simd::sexp(d_alpha_[i] * (t - d_shift_[i]));
      const double denom = (1.0 + e) * (1.0 + e);
      m = d_scale_[i] / (1.0 + e);
      dm = -d_scale_[i] * d_alpha_[i] * e / denom;
      return;
    }
    case DemandFamily::isoelastic:
      if (t <= 0.0) {
        m = d_scale_[i];
        dm = 0.0;
      } else {
        m = d_scale_[i] * std::pow(1.0 + t, -d_alpha_[i]);
        dm = -d_alpha_[i] * d_scale_[i] * std::pow(1.0 + t, -d_alpha_[i] - 1.0);
      }
      return;
    case DemandFamily::linear:
      m = t <= 0.0 ? d_scale_[i]
                   : (t >= d_alpha_[i] ? 0.0 : d_scale_[i] * (1.0 - t / d_alpha_[i]));
      dm = (t <= 0.0 || t >= d_alpha_[i]) ? 0.0 : -d_scale_[i] / d_alpha_[i];
      return;
    case DemandFamily::opaque:
      break;
  }
  m = d_opaque_[i]->population(t);
  dm = d_opaque_[i]->derivative(t);
}

double MarketKernel::population(std::size_t i, double t) const {
  if (i >= n_) {
    throw std::out_of_range("MarketKernel::population: provider index out of range");
  }
  return demand_value(i, t);
}

double MarketKernel::population_slope(std::size_t i, double t) const {
  if (i >= n_) {
    throw std::out_of_range("MarketKernel::population_slope: provider index out of range");
  }
  double m = 0.0;
  double dm = 0.0;
  demand_value_and_slope(i, t, m, dm);
  return dm;
}

void MarketKernel::populations(double price, std::span<const double> subsidies,
                               std::span<double> m) const {
  check_population_size(subsidies.size());
  check_population_size(m.size());
  for (std::size_t i = 0; i < n_; ++i) {
    m[i] = demand_value(i, price - subsidies[i]);
  }
}

void MarketKernel::populations_and_slopes(double price, std::span<const double> subsidies,
                                          std::span<double> m, std::span<double> dm) const {
  check_population_size(subsidies.size());
  check_population_size(m.size());
  check_population_size(dm.size());
  for (std::size_t i = 0; i < n_; ++i) {
    demand_value_and_slope(i, price - subsidies[i], m[i], dm[i]);
  }
}

// --- Utilization model ---------------------------------------------------

double MarketKernel::inverse_throughput(double phi) const {
  switch (util_family_) {
    case UtilizationFamily::linear:
      check_phi(phi);
      return phi * mu_;
    case UtilizationFamily::delay:
      check_phi(phi);
      return mu_ * phi / (1.0 + phi);
    case UtilizationFamily::power:
      check_phi(phi);
      return mu_ * std::pow(phi, 1.0 / gamma_);
    case UtilizationFamily::opaque:
      break;
  }
  return util_model_->inverse_throughput(phi, mu_);
}

double MarketKernel::inverse_throughput_dphi(double phi) const {
  switch (util_family_) {
    case UtilizationFamily::linear:
      check_phi(phi);
      return mu_;
    case UtilizationFamily::delay: {
      check_phi(phi);
      const double denom = (1.0 + phi) * (1.0 + phi);
      return mu_ / denom;
    }
    case UtilizationFamily::power: {
      check_phi(phi);
      if (phi == 0.0) {
        // One-sided limit, matching PowerUtilization::inverse_throughput_dphi.
        return gamma_ == 1.0
                   ? mu_
                   : (gamma_ > 1.0 ? std::numeric_limits<double>::infinity() : 0.0);
      }
      return mu_ * std::pow(phi, 1.0 / gamma_ - 1.0) / gamma_;
    }
    case UtilizationFamily::opaque:
      break;
  }
  return util_model_->inverse_throughput_dphi(phi, mu_);
}

double MarketKernel::inverse_throughput_dmu(double phi) const {
  switch (util_family_) {
    case UtilizationFamily::linear:
      check_phi(phi);
      return phi;
    case UtilizationFamily::delay:
      check_phi(phi);
      return phi / (1.0 + phi);
    case UtilizationFamily::power:
      check_phi(phi);
      return std::pow(phi, 1.0 / gamma_);
    case UtilizationFamily::opaque:
      break;
  }
  return util_model_->inverse_throughput_dmu(phi, mu_);
}

double MarketKernel::max_utilization() const { return util_model_->max_utilization(); }

}  // namespace subsidy::core
