#include "subsidy/core/capacity.hpp"

#include <cmath>
#include <stdexcept>

#include "subsidy/numerics/optimize.hpp"

namespace subsidy::core {

CapacityPlanner::CapacityPlanner(econ::Market market, CapacityPlanOptions options)
    : market_(std::move(market)), options_(options) {
  if (!(options_.capacity_min > 0.0) || !(options_.capacity_min < options_.capacity_max)) {
    throw std::invalid_argument("CapacityPlanner: need 0 < capacity_min < capacity_max");
  }
}

CapacityPlan CapacityPlanner::optimize(double policy_cap, double cost_per_unit) const {
  if (cost_per_unit < 0.0) {
    throw std::invalid_argument("CapacityPlanner: cost_per_unit must be >= 0");
  }
  auto profit_at = [&](double mu) {
    const IspPriceOptimizer optimizer(market_.with_capacity(mu), options_.price_search);
    const OptimalPrice best = optimizer.optimize(policy_cap);
    return best.revenue - cost_per_unit * mu;
  };

  num::MaximizeOptions opt;
  opt.grid_points = options_.grid_points;
  opt.x_tol = options_.refine_tolerance;
  const num::MaximizeResult best =
      num::grid_refine_maximize(profit_at, options_.capacity_min, options_.capacity_max, opt);

  CapacityPlan plan;
  plan.capacity = best.arg;
  const IspPriceOptimizer optimizer(market_.with_capacity(plan.capacity),
                                    options_.price_search);
  const OptimalPrice price = optimizer.optimize(policy_cap);
  plan.price = price.price;
  plan.revenue = price.revenue;
  plan.profit = price.revenue - cost_per_unit * plan.capacity;
  plan.state = price.state;
  return plan;
}

std::vector<ReinvestmentStep> CapacityPlanner::reinvestment_path(double policy_cap,
                                                                 double cost_per_unit,
                                                                 double reinvest_fraction,
                                                                 int rounds) const {
  if (cost_per_unit <= 0.0) {
    throw std::invalid_argument("CapacityPlanner: reinvestment needs cost_per_unit > 0");
  }
  if (reinvest_fraction < 0.0 || reinvest_fraction > 1.0) {
    throw std::invalid_argument("CapacityPlanner: reinvest_fraction must be in [0, 1]");
  }

  // Baseline: the no-subsidization revenue at the initial capacity. Revenue
  // above this is the "gain from deregulation" the ISP reinvests.
  const IspPriceOptimizer baseline_optimizer(market_, options_.price_search);
  const double baseline_revenue = baseline_optimizer.optimize(0.0).revenue;

  std::vector<ReinvestmentStep> path;
  path.reserve(static_cast<std::size_t>(rounds));
  double mu = market_.capacity();
  for (int round = 0; round < rounds; ++round) {
    const econ::Market current = market_.with_capacity(mu);
    const IspPriceOptimizer optimizer(current, options_.price_search);
    const OptimalPrice best = optimizer.optimize(policy_cap);

    ReinvestmentStep step;
    step.round = round;
    step.capacity = mu;
    step.revenue = best.revenue;
    step.utilization = best.state.utilization;
    step.welfare = best.state.welfare;
    path.push_back(step);

    const double gain = std::max(0.0, best.revenue - baseline_revenue);
    mu += reinvest_fraction * gain / cost_per_unit;
  }
  return path;
}

}  // namespace subsidy::core
