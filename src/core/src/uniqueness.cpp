#include "subsidy/core/uniqueness.hpp"

#include <cmath>

#include "subsidy/numerics/matrix_props.hpp"

namespace subsidy::core {

UniquenessAnalyzer::UniquenessAnalyzer(const SubsidizationGame& game) : game_(&game) {}

PFunctionCheck UniquenessAnalyzer::sample_p_function(num::Rng& rng, int pairs,
                                                     double tolerance) const {
  PFunctionCheck check;
  const std::size_t n = game_->num_players();
  const double q = game_->policy_cap();

  for (int pair = 0; pair < pairs; ++pair) {
    std::vector<double> s(n);
    std::vector<double> s_prime(n);
    for (std::size_t i = 0; i < n; ++i) {
      s[i] = rng.uniform(0.0, q);
      s_prime[i] = rng.uniform(0.0, q);
    }
    // Skip (numerically) identical profiles.
    double max_diff = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      max_diff = std::max(max_diff, std::fabs(s[i] - s_prime[i]));
    }
    if (max_diff < 1e-9) continue;

    const std::vector<double> u = game_->marginal_utilities(s);
    const std::vector<double> u_prime = game_->marginal_utilities(s_prime);

    // Condition (10): there exists i with (s'_i - s_i)(u_i(s') - u_i(s)) < 0.
    bool found = false;
    for (std::size_t i = 0; i < n; ++i) {
      const double product = (s_prime[i] - s[i]) * (u_prime[i] - u[i]);
      if (product < -tolerance) {
        found = true;
        break;
      }
    }
    ++check.pairs_tested;
    if (!found) {
      check.holds = false;
      check.witness_s = s;
      check.witness_s_prime = s_prime;
      return check;
    }
  }
  return check;
}

JacobianCheck UniquenessAnalyzer::jacobian_check(std::span<const double> subsidies,
                                                 double fd_step) const {
  const std::size_t n = game_->num_players();
  JacobianCheck check;
  check.negated_jacobian = num::Matrix(n, n);

  // Central differences of the analytic marginal utilities. The negated
  // Jacobian -du_i/ds_j is the Jacobian of the VI map F = -u.
  std::vector<double> base(subsidies.begin(), subsidies.end());
  for (std::size_t j = 0; j < n; ++j) {
    const double h = fd_step * std::max(1.0, std::fabs(base[j]));
    std::vector<double> hi = base;
    std::vector<double> lo = base;
    hi[j] += h;
    lo[j] -= h;
    const std::vector<double> u_hi = game_->marginal_utilities(hi);
    const std::vector<double> u_lo = game_->marginal_utilities(lo);
    for (std::size_t i = 0; i < n; ++i) {
      check.negated_jacobian(i, j) = -(u_hi[i] - u_lo[i]) / (2.0 * h);
    }
  }

  check.p_matrix = num::is_p_matrix(check.negated_jacobian);
  check.m_matrix = num::is_m_matrix(check.negated_jacobian);
  check.diagonally_dominant = num::is_strictly_diagonally_dominant(check.negated_jacobian);

  // Corollary 1's hypothesis: du_i/ds_j >= 0 for i != j, i.e. the negated
  // Jacobian has non-positive off-diagonal entries (Z-matrix).
  check.off_diagonal_monotone = num::is_z_matrix(check.negated_jacobian, 1e-9);
  return check;
}

}  // namespace subsidy::core
