#include "subsidy/core/sensitivity.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace subsidy::core {

namespace {

/// d u_k / d s_j by central difference of the analytic marginal utilities.
/// Evaluated without clamping: the VI sensitivity framework differentiates
/// the field across the active constraints.
num::Matrix marginal_utility_jacobian(const SubsidizationGame& game,
                                      std::span<const double> subsidies, double fd_step) {
  const std::size_t n = game.num_players();
  num::Matrix jac(n, n);
  std::vector<double> base(subsidies.begin(), subsidies.end());
  for (std::size_t j = 0; j < n; ++j) {
    const double h = fd_step * std::max(1.0, std::fabs(base[j]));
    std::vector<double> hi = base;
    std::vector<double> lo = base;
    hi[j] += h;
    lo[j] -= h;
    const std::vector<double> u_hi = game.marginal_utilities(hi);
    const std::vector<double> u_lo = game.marginal_utilities(lo);
    for (std::size_t i = 0; i < n; ++i) {
      jac(i, j) = (u_hi[i] - u_lo[i]) / (2.0 * h);
    }
  }
  return jac;
}

/// d u / d p by central difference in the price.
std::vector<double> marginal_utility_dp(const SubsidizationGame& game,
                                        std::span<const double> subsidies, double fd_step) {
  const double p = game.price();
  const double h = fd_step * std::max(1.0, std::fabs(p));
  const std::vector<double> u_hi = game.with_price(p + h).marginal_utilities(subsidies);
  const std::vector<double> u_lo = game.with_price(p - h).marginal_utilities(subsidies);
  std::vector<double> out(u_hi.size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = (u_hi[i] - u_lo[i]) / (2.0 * h);
  return out;
}

}  // namespace

SensitivityReport equilibrium_sensitivity(const SubsidizationGame& game,
                                          std::span<const double> equilibrium,
                                          const SensitivityOptions& options) {
  const std::size_t n = game.num_players();
  if (equilibrium.size() != n) {
    throw std::invalid_argument("equilibrium_sensitivity: profile size mismatch");
  }

  SensitivityReport report;
  report.classification = verify_kkt(game, equilibrium, options.kkt);
  const auto interior = report.classification.players_in(ActiveSet::interior);
  const auto at_cap = report.classification.players_in(ActiveSet::at_cap);

  report.ds_dq.assign(n, 0.0);
  report.ds_dp.assign(n, 0.0);
  // Equation (11), boundary cases: N- stays at zero, N+ tracks the cap 1:1.
  for (std::size_t j : at_cap) report.ds_dq[j] = 1.0;

  const num::Matrix full_jacobian = marginal_utility_jacobian(game, equilibrium, options.fd_step);
  report.interior_jacobian = full_jacobian.principal_submatrix(interior);

  if (!interior.empty()) {
    const num::LuDecomposition lu(report.interior_jacobian);
    if (lu.singular()) {
      report.valid = false;
      return report;
    }
    // ds~/dq = -(grad_s~ u~)^{-1} * (d u~ / d s_{N+}) * 1   (equation (11)).
    num::Vector cap_influence(interior.size(), 0.0);
    for (std::size_t a = 0; a < interior.size(); ++a) {
      for (std::size_t j : at_cap) {
        cap_influence[a] += full_jacobian(interior[a], j);
      }
    }
    const num::Vector dsq = lu.solve(cap_influence);
    for (std::size_t a = 0; a < interior.size(); ++a) {
      report.ds_dq[interior[a]] = -dsq[a];
    }

    // ds~/dp = -(grad_s~ u~)^{-1} * (d u~ / d p)   (equation (12)).
    const std::vector<double> du_dp = marginal_utility_dp(game, equilibrium, options.fd_step);
    num::Vector dp_vec(interior.size());
    for (std::size_t a = 0; a < interior.size(); ++a) dp_vec[a] = du_dp[interior[a]];
    const num::Vector dsp = lu.solve(dp_vec);
    for (std::size_t a = 0; a < interior.size(); ++a) {
      report.ds_dp[interior[a]] = -dsp[a];
    }
  }
  report.valid = true;

  // Assemble the Corollary 1 aggregates at the solved state.
  const auto& market = game.market();
  const ModelEvaluator& evaluator = game.evaluator();
  const SystemState state = game.state(equilibrium);
  const std::vector<double> m = state.populations();
  const double phi = state.utilization;
  const double dg = evaluator.gap_derivative(phi, m);

  double dphi_dq = 0.0;
  double dphi_dp = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& cp = market.provider(i);
    const double lambda_i = cp.throughput->rate(phi);
    const double dm_dt = cp.demand->derivative(game.price() - equilibrium[i]);
    // Fixed p: t_i = p - s_i so dm_i/dq = -m'(t_i) ds_i/dq.
    dphi_dq += (lambda_i / dg) * (-dm_dt * report.ds_dq[i]);
    // Price change with equilibrium subsidy response: dt_i/dp = 1 - ds_i/dp.
    dphi_dp += (lambda_i / dg) * (dm_dt * (1.0 - report.ds_dp[i]));
  }
  report.dphi_dq = dphi_dq;
  report.dphi_dp = dphi_dp;

  // dR/dq = p * dTheta/dphi * dphi/dq (R = p * Theta(phi, mu) at equilibrium).
  const double dtheta_dphi =
      market.utilization_model().inverse_throughput_dphi(phi, market.capacity());
  report.dR_dq = game.price() * dtheta_dphi * dphi_dq;
  return report;
}

ProfitabilitySensitivity profitability_sensitivity(const SubsidizationGame& game,
                                                   std::span<const double> equilibrium,
                                                   std::size_t provider,
                                                   const SensitivityOptions& options) {
  const std::size_t n = game.num_players();
  if (equilibrium.size() != n) {
    throw std::invalid_argument("profitability_sensitivity: profile size mismatch");
  }
  if (provider >= n) {
    throw std::out_of_range("profitability_sensitivity: provider index out of range");
  }

  ProfitabilitySensitivity report;
  report.classification = verify_kkt(game, equilibrium, options.kkt);
  report.ds_dv.assign(n, 0.0);
  // The only direct dependence of the marginal-utility field on v_i:
  // u_i = -theta_i + (v_i - s_i) dtheta_i/ds_i, so du_i/dv_i = dtheta_i/ds_i.
  report.du_i_dv = game.dtheta_i_dsi(provider, equilibrium);

  const auto interior = report.classification.players_in(ActiveSet::interior);
  const bool provider_interior =
      std::find(interior.begin(), interior.end(), provider) != interior.end();
  if (provider_interior && !interior.empty()) {
    const num::Matrix full_jacobian =
        marginal_utility_jacobian(game, equilibrium, options.fd_step);
    const num::LuDecomposition lu(full_jacobian.principal_submatrix(interior));
    if (lu.singular()) return report;  // valid stays false

    // Right-hand side: -e_a * du_i/dv_i on the interior block, where a is
    // provider i's position within the interior set.
    num::Vector rhs(interior.size(), 0.0);
    for (std::size_t a = 0; a < interior.size(); ++a) {
      if (interior[a] == provider) rhs[a] = report.du_i_dv;
    }
    const num::Vector ds = lu.solve(rhs);
    for (std::size_t a = 0; a < interior.size(); ++a) {
      report.ds_dv[interior[a]] = -ds[a];
    }
  }
  // Players pinned at 0 (u < 0) or at the cap (u > 0) do not move for a
  // marginal profitability change — including provider i itself.
  report.valid = true;

  // Own-throughput response: dtheta_i/dv = sum_j (dtheta_i/ds_j) ds_j/dv_i,
  // with the cross partials evaluated by finite differences of the state.
  const ModelEvaluator& evaluator = game.evaluator();
  std::vector<double> base(equilibrium.begin(), equilibrium.end());
  double dtheta = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    if (report.ds_dv[j] == 0.0) continue;
    const double h = options.fd_step * std::max(1.0, std::fabs(base[j]));
    std::vector<double> hi = base;
    std::vector<double> lo = base;
    hi[j] += h;
    lo[j] -= h;
    const double theta_hi =
        evaluator.evaluate(game.price(), hi).providers[provider].throughput;
    const double theta_lo =
        evaluator.evaluate(game.price(), lo).providers[provider].throughput;
    dtheta += (theta_hi - theta_lo) / (2.0 * h) * report.ds_dv[j];
  }
  report.dtheta_i_dv = dtheta;
  return report;
}

}  // namespace subsidy::core
