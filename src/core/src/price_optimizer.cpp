#include "subsidy/core/price_optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <future>
#include <stdexcept>
#include <utility>

#include "subsidy/core/nash_batch.hpp"
#include "subsidy/numerics/optimize.hpp"
#include "subsidy/numerics/simd.hpp"
#include "subsidy/runtime/chain_partition.hpp"
#include "subsidy/runtime/thread_pool.hpp"

namespace subsidy::core {

IspPriceOptimizer::IspPriceOptimizer(econ::Market market, PriceSearchOptions options)
    : market_(std::move(market)), options_(options) {
  if (options_.grid_points < 3) {
    throw std::invalid_argument("IspPriceOptimizer: need >= 3 grid points");
  }
  if (!(options_.price_min < options_.price_max)) {
    throw std::invalid_argument("IspPriceOptimizer: price_min must be < price_max");
  }
}

IspPriceOptimizer::~IspPriceOptimizer() = default;

IspPriceOptimizer::IspPriceOptimizer(const IspPriceOptimizer& other)
    : market_(other.market_), options_(other.options_) {}

IspPriceOptimizer& IspPriceOptimizer::operator=(const IspPriceOptimizer& other) {
  if (this != &other) {
    market_ = other.market_;
    options_ = other.options_;
    const std::lock_guard<std::mutex> lock(pool_mutex_);
    pool_.reset();
  }
  return *this;
}

runtime::ThreadPool& IspPriceOptimizer::pool() const {
  const std::lock_guard<std::mutex> lock(pool_mutex_);
  if (!pool_) pool_ = std::make_unique<runtime::ThreadPool>(options_.jobs);
  return *pool_;
}

OptimalPrice IspPriceOptimizer::optimize(double policy_cap) const {
  return optimize(policy_cap, std::span<const double>{});
}

OptimalPrice IspPriceOptimizer::optimize(double policy_cap,
                                         std::span<const double> initial_subsidies) const {
  // Coarse grid as chains: the partition never depends on `jobs`, so the
  // grid results are bit-identical for any worker count. On the batched
  // path each chain is one lockstep solve_nash_many plane; on the
  // forced-scalar reference path each chain is the pre-engine warm-start
  // continuation, bit-for-bit.
  const std::size_t n = static_cast<std::size_t>(options_.grid_points);
  const double step =
      (options_.price_max - options_.price_min) / static_cast<double>(n - 1);
  std::vector<double> grid_prices(n);
  for (std::size_t k = 0; k < n; ++k) {
    grid_prices[k] = options_.price_min + step * static_cast<double>(k);
  }
  std::vector<NashResult> grid(n);

  // One compiled kernel serves the whole search: the q = 0 grid plane, every
  // lockstep chain, the refinement line search and the final solve.
  const ModelEvaluator evaluator(market_);
  const bool batched = !num::simd::force_scalar();

  if (policy_cap <= 0.0) {
    // q = 0 pins every subsidy at zero, so the whole grid phase degenerates
    // to unsubsidized evaluations — one node-major plane through
    // UtilizationSolver::solve_many instead of grid_points Nash solves.
    std::vector<SystemState> states = evaluator.evaluate_unsubsidized_many(grid_prices);
    const std::size_t players = market_.num_providers();
    for (std::size_t k = 0; k < n; ++k) {
      grid[k] = degenerate_nash_result(players, std::move(states[k]));
    }
  } else {
    const std::vector<runtime::Chain> chains =
        runtime::partition_chains(1, n, options_.chain_length);

    // Chained grids: batch-solve the utilization plane of the warm-start
    // nodes (at the clamped initial profile each Nash solve starts from) and
    // hand the phis down as warm-start hints — every node of a lockstep
    // chain, or just each chain head on the reference path. One plane
    // replaces that many cold bracket expansions; hints shift results only
    // within solver tolerance, so chain_length == 0 keeps the legacy
    // bit-exact semantics by skipping this. Independent of `jobs` either
    // way.
    const bool lockstep = batched && options_.chain_length != 0;
    std::vector<double> node_hints(n, -1.0);
    std::vector<double> head_hints(chains.size(), -1.0);
    if (options_.chain_length != 0 && !chains.empty()) {
      const UtilizationSolver& solver = evaluator.solver();
      const std::size_t players = market_.num_providers();
      std::vector<double> profile(initial_subsidies.begin(), initial_subsidies.end());
      if (profile.empty()) profile.assign(players, 0.0);
      for (double& s : profile) s = std::clamp(s, 0.0, policy_cap);
      if (lockstep) {
        std::vector<double> m(n * players);
        for (std::size_t k = 0; k < n; ++k) {
          const std::span<double> row(m.data() + k * players, players);
          solver.kernel().populations(grid_prices[k], profile, row);
        }
        solver.solve_many(m, {}, node_hints);
      } else {
        std::vector<double> m(chains.size() * players);
        for (std::size_t c = 0; c < chains.size(); ++c) {
          const std::span<double> row(m.data() + c * players, players);
          solver.kernel().populations(grid_prices[chains[c].begin], profile, row);
        }
        solver.solve_many(m, {}, head_hints);
      }
    }

    const auto solve_chain = [&](std::size_t chain_index) {
      const runtime::Chain& chain = chains[chain_index];
      if (lockstep) {
        // The whole chain advances as one lockstep batch: every pass of
        // every line search lands the chain's candidate ranks in shared
        // planes. Each node starts from `initial_subsidies` and its
        // plane-solved hint (no intra-chain continuation to serialize on).
        std::vector<NashBatchNode> nodes(chain.end - chain.begin);
        for (std::size_t k = chain.begin; k < chain.end; ++k) {
          NashBatchNode& node = nodes[k - chain.begin];
          node.price = grid_prices[k];
          node.policy_cap = policy_cap;
          node.initial = initial_subsidies;
          node.phi_hint = node_hints[k];
        }
        std::vector<NashResult> results = solve_nash_many(evaluator, nodes, options_.nash);
        for (std::size_t k = chain.begin; k < chain.end; ++k) {
          grid[k] = std::move(results[k - chain.begin]);
        }
        return;
      }
      std::vector<double> warm(initial_subsidies.begin(), initial_subsidies.end());
      double phi_hint = head_hints[chain_index];
      for (std::size_t k = chain.begin; k < chain.end; ++k) {
        const SubsidizationGame game(market_, grid_prices[k], policy_cap);
        NashResult nash = solve_nash(game, warm, options_.nash, {}, phi_hint);
        phi_hint = -1.0;  // only the chain's cold head uses the plane hint
        warm = nash.subsidies;
        grid[k] = std::move(nash);
      }
    };

    if (options_.jobs <= 1 || chains.size() <= 1) {
      for (std::size_t c = 0; c < chains.size(); ++c) solve_chain(c);
    } else {
      runtime::ThreadPool& workers = pool();
      std::vector<std::future<void>> pending;
      pending.reserve(chains.size());
      for (std::size_t c = 0; c < chains.size(); ++c) {
        pending.push_back(workers.submit([&solve_chain, c]() { solve_chain(c); }));
      }
      // Drain every future before rethrowing: the pool outlives this call, so
      // unwinding while chains still run would leave them referencing
      // destroyed stack locals.
      std::exception_ptr first_failure;
      for (std::future<void>& f : pending) {
        try {
          f.get();
        } catch (...) {
          if (!first_failure) first_failure = std::current_exception();
        }
      }
      if (first_failure) std::rethrow_exception(first_failure);
    }
  }

  // Best cell, scanned in ascending price order (deterministic tie-break).
  double best_price = options_.price_min;
  double best_revenue = -1.0;
  double best_phi = -1.0;
  std::vector<double> best_subsidies;
  for (std::size_t k = 0; k < n; ++k) {
    if (grid[k].state.revenue > best_revenue) {
      best_revenue = grid[k].state.revenue;
      best_price = options_.price_min + step * static_cast<double>(k);
      best_phi = grid[k].state.utilization;
      best_subsidies = grid[k].subsidies;
    }
  }

  // Golden-section refinement around the best cell, warm-starting every inner
  // equilibrium from the best grid solution. The batched path threads the
  // previously solved utilization through the line search as well, so every
  // refinement equilibrium starts from a bracketed fixed point.
  const double lo = std::max(options_.price_min, best_price - step);
  const double hi = std::min(options_.price_max, best_price + step);
  double refine_phi = best_phi;
  const auto solve_at = [&](double p) {
    if (!batched) {
      const SubsidizationGame game(market_, p, policy_cap);
      return solve_nash(game, best_subsidies, options_.nash);
    }
    NashBatchNode node;
    node.price = p;
    node.policy_cap = policy_cap;
    node.initial = best_subsidies;
    node.phi_hint = refine_phi;
    NashResult nash =
        std::move(solve_nash_many(evaluator, std::span<const NashBatchNode>(&node, 1),
                                  options_.nash)
                      .front());
    refine_phi = nash.state.utilization;
    return nash;
  };
  auto objective = [&](double p) { return solve_at(p).state.revenue; };
  num::MaximizeOptions opt;
  opt.x_tol = options_.refine_tolerance;
  opt.grid_points = 9;
  const num::MaximizeResult refined = num::grid_refine_maximize(objective, lo, hi, opt);

  OptimalPrice result;
  result.price = refined.value >= best_revenue ? refined.arg : best_price;
  const NashResult final_nash = solve_at(result.price);
  result.revenue = final_nash.state.revenue;
  result.state = final_nash.state;
  result.subsidies = final_nash.subsidies;
  return result;
}

std::vector<OptimalPrice> IspPriceOptimizer::price_response(
    const std::vector<double>& policy_caps) const {
  std::vector<OptimalPrice> out;
  out.reserve(policy_caps.size());
  std::vector<double> warm;
  for (double q : policy_caps) {
    out.push_back(optimize(q, warm));
    warm = out.back().subsidies;
  }
  return out;
}

}  // namespace subsidy::core
