#include "subsidy/core/price_optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "subsidy/numerics/optimize.hpp"

namespace subsidy::core {

IspPriceOptimizer::IspPriceOptimizer(econ::Market market, PriceSearchOptions options)
    : market_(std::move(market)), options_(options) {
  if (options_.grid_points < 3) {
    throw std::invalid_argument("IspPriceOptimizer: need >= 3 grid points");
  }
  if (!(options_.price_min < options_.price_max)) {
    throw std::invalid_argument("IspPriceOptimizer: price_min must be < price_max");
  }
}

OptimalPrice IspPriceOptimizer::optimize(double policy_cap) const {
  const BestResponseSolver solver(options_.nash);

  // Coarse grid with equilibrium continuation: each price point's Nash solve
  // starts from the previous equilibrium.
  const int n = options_.grid_points;
  const double step =
      (options_.price_max - options_.price_min) / static_cast<double>(n - 1);
  std::vector<double> warm;
  double best_price = options_.price_min;
  double best_revenue = -1.0;
  std::vector<double> best_subsidies;
  for (int i = 0; i < n; ++i) {
    const double p = options_.price_min + step * i;
    const SubsidizationGame game(market_, p, policy_cap);
    NashResult nash = solve_nash(game, warm, options_.nash);
    warm = nash.subsidies;
    if (nash.state.revenue > best_revenue) {
      best_revenue = nash.state.revenue;
      best_price = p;
      best_subsidies = nash.subsidies;
    }
  }

  // Golden-section refinement around the best cell, warm-starting every inner
  // equilibrium from the best grid solution.
  const double lo = std::max(options_.price_min, best_price - step);
  const double hi = std::min(options_.price_max, best_price + step);
  auto objective = [&](double p) {
    const SubsidizationGame game(market_, p, policy_cap);
    return solve_nash(game, best_subsidies, options_.nash).state.revenue;
  };
  num::MaximizeOptions opt;
  opt.x_tol = options_.refine_tolerance;
  opt.grid_points = 9;
  const num::MaximizeResult refined = num::grid_refine_maximize(objective, lo, hi, opt);

  OptimalPrice result;
  result.price = refined.value >= best_revenue ? refined.arg : best_price;
  const SubsidizationGame final_game(market_, result.price, policy_cap);
  const NashResult final_nash = solve_nash(final_game, best_subsidies, options_.nash);
  result.revenue = final_nash.state.revenue;
  result.state = final_nash.state;
  result.subsidies = final_nash.subsidies;
  return result;
}

std::vector<OptimalPrice> IspPriceOptimizer::price_response(
    const std::vector<double>& policy_caps) const {
  std::vector<OptimalPrice> out;
  out.reserve(policy_caps.size());
  for (double q : policy_caps) out.push_back(optimize(q));
  return out;
}

}  // namespace subsidy::core
