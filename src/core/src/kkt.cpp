#include "subsidy/core/kkt.hpp"

#include <algorithm>
#include <cmath>

namespace subsidy::core {

std::string to_string(ActiveSet set) {
  switch (set) {
    case ActiveSet::at_zero:
      return "N-";
    case ActiveSet::interior:
      return "N~";
    case ActiveSet::at_cap:
      return "N+";
  }
  return "?";
}

std::vector<std::size_t> KktReport::players_in(ActiveSet set) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].active_set == set) out.push_back(i);
  }
  return out;
}

KktReport verify_kkt(const SubsidizationGame& game, std::span<const double> subsidies,
                     const KktOptions& options) {
  const std::size_t n = game.num_players();
  const double q = game.policy_cap();
  const std::vector<double> u = game.marginal_utilities(subsidies);
  // One shared fixed point for all n thresholds — computed by exactly the
  // expressions the single-profile threshold_tau overload would run per
  // player, so the shared values are bitwise the per-call ones.
  const std::vector<double> m = game.evaluator().populations(game.price(), subsidies);
  const double phi = game.evaluator().solver().solve(m);

  KktReport report;
  report.entries.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    KktEntry& e = report.entries[i];
    e.subsidy = subsidies[i];
    e.marginal_utility = u[i];
    e.threshold_tau = game.threshold_tau(i, subsidies, m, phi);

    if (subsidies[i] <= options.boundary_tolerance) {
      e.active_set = ActiveSet::at_zero;
      // Requirement: u_i <= 0 (no incentive to start subsidizing).
      e.residual = std::max(0.0, u[i]);
    } else if (q - subsidies[i] <= options.boundary_tolerance) {
      e.active_set = ActiveSet::at_cap;
      // Requirement: u_i >= 0 (the cap binds).
      e.residual = std::max(0.0, -u[i]);
    } else {
      e.active_set = ActiveSet::interior;
      // Requirement: stationarity.
      e.residual = std::fabs(u[i]);
    }
    report.max_residual = std::max(report.max_residual, e.residual);
  }
  report.satisfied = report.max_residual <= options.residual_tolerance;
  return report;
}

}  // namespace subsidy::core
