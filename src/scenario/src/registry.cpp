#include "subsidy/scenario/registry.hpp"

#include <iterator>
#include <stdexcept>

namespace subsidy::scenario {

namespace {

struct NamedText {
  const char* name;
  const char* text;
};

constexpr const char* kSection3 = R"(# The paper's Section 3 market (Figures 4-5): nine CP classes with
# (alpha, beta) in {1,3,5}^2, m_i = e^{-alpha_i t}, lambda_i = e^{-beta_i phi},
# Phi = theta / mu, mu = 1 — under status-quo one-sided pricing (no subsidies).
[scenario]
name = section3
description = Section 3 one-sided pricing market (Figures 4-5 data)

[market]
base = section3

[one_sided]
prices = 0.05:2:41
out = section3_one_sided.csv
)";

constexpr const char* kSection5 = R"(# The paper's Section 5 market (Figures 7-11): eight CP classes with
# alpha, beta in {2,5} and v in {0.5,1}, mu = 1 — one Nash equilibrium plus a
# fixed-price policy-cap sweep.
[scenario]
name = section5
description = Section 5 subsidization market: Nash equilibrium and policy response

[market]
base = section5

[equilibrium]
price = 0.8
cap = 1.0
out = section5_equilibrium.csv

[policy]
caps = 0,0.5,1,1.5,2
price = 0.8
out = section5_policy.csv
)";

constexpr const char* kSection5Figures = R"(# The Figure 7-11 production grid: Nash equilibria of the Section 5 market
# over the full (policy cap, price) lattice. Chains of 8 consecutive prices
# share a warm start; rows are bit-identical for any --jobs value.
[scenario]
name = section5_figures
description = Figure 7-11 grid: Nash equilibria over (policy cap, price)

[market]
base = section5

[figure]
prices = 0.05:2:41
caps = 0,0.5,1,1.5,2
chain = 8
jobs = 2
out = section5_figures.csv
)";

constexpr const char* kMixedFamilies = R"(# Every demand family and both non-exponential throughput families in one
# market, on the delay utilization model — nothing here is expressible in the
# paper's exponential-only parameterization.
[scenario]
name = mixed_families
description = Logit/isoelastic/linear demand with power-law/delay throughput

[market]
capacity = 1.2
utilization = delay
throughput = exp:beta=2
v = 1.0

[provider]
name = video
demand = exp:alpha=2
throughput = power:beta=1.5

[provider]
name = social
demand = logit:k=4,t0=0.5
throughput = delay:beta=2
v = 0.8

[provider]
name = news
demand = iso:eps=2
v = 0.6

[provider]
name = games
demand = linear:tmax=1.5,m0=0.8
throughput = exp:beta=5
v = 1.2

[one_sided]
prices = 0.1:1.9:19
out = mixed_one_sided.csv

[sweep]
prices = 0.1:1.9:10
cap = 0.5
chain = 4
jobs = 2
out = mixed_sweep.csv
)";

constexpr const char* kNashBatch = R"(# Lockstep Nash-batching exercise: one equilibrium block plus a chained
# (cap x price) figure grid on a three-family market, so the scenario smoke
# gate pins the plane-evaluated best-response line searches under both exp
# backends (and the q = 0 row of the figure rides the degenerate planes).
[scenario]
name = nash_batch
description = Batched Nash layer: equilibrium and chained figure-grid goldens

[market]
capacity = 1.0
throughput = exp:beta=3
v = 1.0

[provider]
name = video
demand = exp:alpha=2
v = 0.9

[provider]
name = social
demand = exp:alpha=3
throughput = exp:beta=5
v = 0.7

[provider]
name = news
demand = logit:k=5,t0=0.6
throughput = delay:beta=2
v = 1.1

[equilibrium]
price = 0.8
cap = 0.9
out = nash_batch_equilibrium.csv

[figure]
prices = 0.2:1.6:8
caps = 0,0.8
chain = 4
jobs = 2
out = nash_batch_figure.csv
)";

constexpr const char* kAgentSim = R"(# Agent-market cross-validation: simulate the Section 5 market as individual
# noisy adopters at the Nash subsidies and require the stochastic steady
# state to land on the analytic equilibrium (utilization fixed point and
# per-CP demand targets) within 5%. congestion stays 0 here so adoption
# decisions are exp-backend independent: the golden CSVs then agree across
# backends to solver ulps, which the numeric smoke compare absorbs.
[scenario]
name = agent_sim
description = Agent simulation vs analytic equilibrium: Nash-subsidy cross-validation

[market]
base = section5

[simulation]
price = 0.8
cap = 1.0
users = 2000
ticks = 120
seed = 1
wakeup = 4
replicas = 2
noise = 0.02
snapshot = 20
validate = 0.05
jobs = 2
out = agent_sim.csv
)";

constexpr NamedText kRegistry[] = {
    {"section3", kSection3},
    {"section5", kSection5},
    {"section5_figures", kSection5Figures},
    {"mixed_families", kMixedFamilies},
    {"nash_batch", kNashBatch},
    {"agent_sim", kAgentSim},
};

const NamedText* find(const std::string& name) {
  for (const NamedText& entry : kRegistry) {
    if (name == entry.name) return &entry;
  }
  return nullptr;
}

}  // namespace

std::vector<RegistryEntry> registry_entries() {
  std::vector<RegistryEntry> entries;
  entries.reserve(std::size(kRegistry));
  for (const NamedText& entry : kRegistry) {
    const Scenario scenario = parse_scenario_text(entry.text, entry.name);
    entries.push_back({entry.name, scenario.description});
  }
  return entries;
}

bool is_registry_scenario(const std::string& name) { return find(name) != nullptr; }

std::string registry_scenario_text(const std::string& name) {
  const NamedText* entry = find(name);
  if (entry == nullptr) {
    throw std::invalid_argument("unknown scenario '" + name + "' (see `scenario list`)");
  }
  return entry->text;
}

Scenario make_registry_scenario(const std::string& name) {
  return parse_scenario_text(registry_scenario_text(name), name);
}

}  // namespace subsidy::scenario
