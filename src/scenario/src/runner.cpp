#include "subsidy/scenario/runner.hpp"

#include <filesystem>
#include <utility>

#include "subsidy/core/game.hpp"
#include "subsidy/core/nash.hpp"
#include "subsidy/core/policy.hpp"
#include "subsidy/io/csv.hpp"
#include "subsidy/runtime/parallel_sweep.hpp"
#include "subsidy/runtime/thread_pool.hpp"

namespace subsidy::scenario {

namespace {

void add_state_row(io::SweepTable& table, double price, const core::SystemState& state) {
  table.add_row({price, state.utilization, state.aggregate_throughput, state.revenue,
                 state.welfare});
}

}  // namespace

bool ScenarioReport::all_converged() const noexcept {
  for (const ExperimentResult& result : experiments) {
    if (!result.converged) return false;
  }
  return true;
}

ScenarioRunner::ScenarioRunner(Scenario scenario, RunOptions options)
    : scenario_(std::move(scenario)),
      options_(std::move(options)),
      evaluator_(scenario_.market) {}

std::size_t ScenarioRunner::effective_jobs(const ExperimentSpec& spec) const {
  // 0 means "use the hardware", matching the CLI's --jobs 0 convention.
  const std::size_t requested = options_.jobs.value_or(spec.jobs);
  return requested == 0 ? runtime::resolve_jobs(0) : requested;
}

std::string ScenarioRunner::resolve_output(const std::string& path) const {
  if (path.empty() || options_.output_dir.empty() || path.front() == '/') return path;
  return options_.output_dir + "/" + path;
}

io::SweepTable ScenarioRunner::run_sweep(const ExperimentSpec& spec, bool& converged) const {
  // Chain partitions hand the runner whole planes: chain heads are
  // batch-solved as one node-major plane of warm-start hints, and zero-cap
  // chains bypass Nash entirely (one solve_many plane per chain). Rows stay
  // byte-identical for any --jobs because the partition never depends on it.
  runtime::SweepOptions options;
  options.jobs = effective_jobs(spec);
  options.chain_length = spec.chain_length;
  const runtime::ParallelSweepRunner runner(scenario_.market, options);
  io::SweepTable table({"p", "phi", "theta", "revenue", "welfare"});
  for (const runtime::SweepRow& row : runner.run_prices(spec.cap, spec.prices)) {
    converged = converged && row.result.converged;
    add_state_row(table, row.price, row.result.state);
  }
  return table;
}

io::SweepTable ScenarioRunner::run_one_sided(const ExperimentSpec& spec) const {
  // Batched through the runner's own compiled kernel: the whole price grid
  // is one node-major UtilizationSolver::solve_many plane (vectorized exp
  // across grid nodes).
  io::SweepTable table({"p", "phi", "theta", "revenue", "welfare"});
  const std::vector<core::SystemState> states =
      evaluator_.evaluate_unsubsidized_many(spec.prices);
  for (std::size_t k = 0; k < states.size(); ++k) {
    add_state_row(table, spec.prices[k], states[k]);
  }
  return table;
}

io::SweepTable ScenarioRunner::run_equilibrium(const ExperimentSpec& spec,
                                               bool& converged) const {
  const core::SubsidizationGame game(scenario_.market, spec.price, spec.cap);
  const core::NashResult nash = core::solve_nash(game);
  converged = converged && nash.converged;
  io::SweepTable table({"cp", "subsidy", "t", "m", "lambda", "theta", "utility"});
  for (std::size_t i = 0; i < nash.state.providers.size(); ++i) {
    const core::CpState& cp = nash.state.providers[i];
    table.add_row({static_cast<double>(i), cp.subsidy, cp.effective_price, cp.population,
                   cp.per_user_rate, cp.throughput, cp.utility});
  }
  return table;
}

io::SweepTable ScenarioRunner::run_policy(const ExperimentSpec& spec) const {
  const core::PriceResponse response = spec.fixed_price
                                           ? core::PriceResponse::fixed(spec.price)
                                           : core::PriceResponse::monopoly();
  const core::PolicyAnalyzer analyzer(scenario_.market, response);
  // Cold, independent evaluations: rows are identical for any job count.
  const std::vector<core::PolicyPoint> points =
      runtime::parallel_map(spec.caps, effective_jobs(spec),
                            [&analyzer](const double& cap) { return analyzer.evaluate(cap); });
  io::SweepTable table({"q", "price", "phi", "theta", "revenue", "welfare"});
  for (const core::PolicyPoint& point : points) {
    table.add_row({point.policy_cap, point.price, point.state.utilization,
                   point.state.aggregate_throughput, point.state.revenue,
                   point.state.welfare});
  }
  return table;
}

io::SweepTable ScenarioRunner::run_figure(const ExperimentSpec& spec, bool& converged) const {
  runtime::SweepOptions options;
  options.jobs = effective_jobs(spec);
  options.chain_length = spec.chain_length;
  const runtime::ParallelSweepRunner runner(scenario_.market, options);
  io::SweepTable table({"q", "p", "phi", "theta", "revenue", "welfare"});
  for (const runtime::SweepRow& row : runner.run(spec.caps, spec.prices)) {
    converged = converged && row.result.converged;
    table.add_row({row.policy_cap, row.price, row.result.state.utilization,
                   row.result.state.aggregate_throughput, row.result.state.revenue,
                   row.result.state.welfare});
  }
  return table;
}

ScenarioReport ScenarioRunner::run() const {
  ScenarioReport report;
  report.scenario_name = scenario_.name;
  for (const ExperimentSpec& spec : scenario_.experiments) {
    ExperimentResult result;
    result.label = spec.label;
    result.type = spec.type;
    switch (spec.type) {
      case ExperimentType::sweep:
        result.table = run_sweep(spec, result.converged);
        break;
      case ExperimentType::one_sided:
        result.table = run_one_sided(spec);
        break;
      case ExperimentType::equilibrium:
        result.table = run_equilibrium(spec, result.converged);
        break;
      case ExperimentType::policy:
        result.table = run_policy(spec);
        break;
      case ExperimentType::figure:
        result.table = run_figure(spec, result.converged);
        break;
    }
    if (!spec.output.empty()) {
      result.output_path = resolve_output(spec.output);
      const std::filesystem::path parent =
          std::filesystem::path(result.output_path).parent_path();
      if (!parent.empty()) std::filesystem::create_directories(parent);
      io::write_csv_file(result.output_path, result.table, options_.precision);
    }
    report.experiments.push_back(std::move(result));
  }
  return report;
}

}  // namespace subsidy::scenario
