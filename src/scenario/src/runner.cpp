#include "subsidy/scenario/runner.hpp"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "subsidy/core/game.hpp"
#include "subsidy/core/nash.hpp"
#include "subsidy/core/policy.hpp"
#include "subsidy/core/reference_point.hpp"
#include "subsidy/io/csv.hpp"
#include "subsidy/io/table.hpp"
#include "subsidy/runtime/parallel_sweep.hpp"
#include "subsidy/runtime/thread_pool.hpp"
#include "subsidy/sim/agent_engine.hpp"
#include "subsidy/sim/cross_validation.hpp"

namespace subsidy::scenario {

namespace {

void add_state_row(io::SweepTable& table, double price, const core::SystemState& state) {
  table.add_row({price, state.utilization, state.aggregate_throughput, state.revenue,
                 state.welfare});
}

/// A Nash result with no solved state: the solve collapsed (every rung of
/// the ladder failed with a status) rather than merely not converging.
bool collapsed(const core::NashResult& result) {
  return result.state.providers.empty();
}

/// The status to report for a collapsed result; a collapse always carries a
/// failed status, bracket_failure is the conservative fallback.
core::SolveStatus failure_status(const core::NashLaneDiagnostics& diagnostics) {
  return core::failed(diagnostics.status) ? diagnostics.status
                                          : core::SolveStatus::bracket_failure;
}

/// Exceptions from injected faults self-identify; everything else reaching
/// the block boundary is a solver collapse.
core::SolveStatus classify_exception(const std::string& what) {
  return what.find("injected fault") != std::string::npos
             ? core::SolveStatus::injected_fault
             : core::SolveStatus::bracket_failure;
}

/// Tallies which fallback rung rescued a converged Nash row.
void count_rescue(const core::NashResult& result, ExperimentResult& out) {
  if (!result.converged) return;
  if (result.diagnostics.rung == core::NashRung::damped) {
    out.rescued_damped += 1;
  } else if (result.diagnostics.rung == core::NashRung::extragradient) {
    out.rescued_extragradient += 1;
  }
}

/// RFC-4180 field quoting for the errors sidecar (details carry free text).
std::string csv_field(const std::string& value) {
  if (value.find_first_of(",\"\n") == std::string::npos) return value;
  std::string quoted = "\"";
  for (const char c : value) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

/// Coordinate cell: empty for NaN ("not applicable").
std::string coord_field(double value, int precision) {
  if (std::isnan(value)) return {};
  return io::format_double(value, precision);
}

}  // namespace

bool ScenarioReport::all_converged() const noexcept {
  for (const ExperimentResult& result : experiments) {
    if (!result.converged) return false;
  }
  return true;
}

std::size_t ScenarioReport::num_failures() const noexcept {
  std::size_t count = 0;
  for (const ExperimentResult& result : experiments) count += result.failures.size();
  return count;
}

ScenarioRunner::ScenarioRunner(Scenario scenario, RunOptions options)
    : scenario_(std::move(scenario)),
      options_(std::move(options)),
      evaluator_(scenario_.market) {}

std::size_t ScenarioRunner::effective_jobs(const ExperimentSpec& spec) const {
  // 0 means "use the hardware", matching the CLI's --jobs 0 convention.
  const std::size_t requested = options_.jobs.value_or(spec.jobs);
  return requested == 0 ? runtime::resolve_jobs(0) : requested;
}

runtime::NumaConfig ScenarioRunner::effective_numa() const {
  return options_.numa.value_or(runtime::default_numa_config());
}

std::string ScenarioRunner::resolve_output(const std::string& path) const {
  if (path.empty() || options_.output_dir.empty() || path.front() == '/') return path;
  return options_.output_dir + "/" + path;
}

io::SweepTable ScenarioRunner::run_sweep(const ExperimentSpec& spec,
                                         ExperimentResult& result) const {
  // Chain partitions hand the runner whole planes: chain heads are
  // batch-solved as one node-major plane of warm-start hints, and zero-cap
  // chains bypass Nash entirely (one solve_many plane per chain). Rows stay
  // byte-identical for any --jobs because the partition never depends on it.
  runtime::SweepOptions options;
  options.jobs = effective_jobs(spec);
  options.chain_length = spec.chain_length;
  options.numa = effective_numa();
  const runtime::ParallelSweepRunner runner(scenario_.market, options);
  io::SweepTable table({"p", "phi", "theta", "revenue", "welfare"});
  const std::vector<runtime::SweepRow> rows = runner.run_prices(spec.cap, spec.prices);
  for (std::size_t k = 0; k < rows.size(); ++k) {
    const runtime::SweepRow& row = rows[k];
    if (collapsed(row.result)) {
      result.converged = false;
      result.failures.push_back({spec.label, spec.type, static_cast<std::ptrdiff_t>(k),
                                 row.price, row.policy_cap,
                                 failure_status(row.result.diagnostics),
                                 row.result.diagnostics.detail});
      continue;
    }
    count_rescue(row.result, result);
    result.converged = result.converged && row.result.converged;
    add_state_row(table, row.price, row.result.state);
  }
  return table;
}

io::SweepTable ScenarioRunner::run_one_sided(const ExperimentSpec& spec,
                                             ExperimentResult& result) const {
  // Batched through the runner's own compiled kernel: the whole price grid
  // is one node-major UtilizationSolver::solve_many plane (vectorized exp
  // across grid nodes). Failed grid nodes are skipped; the survivors'
  // candidate sequences — and therefore their rows — are untouched.
  io::SweepTable table({"p", "phi", "theta", "revenue", "welfare"});
  std::vector<core::SolveStatus> statuses;
  const std::vector<core::SystemState> states =
      evaluator_.try_evaluate_unsubsidized_many(spec.prices, statuses);
  for (std::size_t k = 0; k < states.size(); ++k) {
    if (core::failed(statuses[k])) {
      result.converged = false;
      result.failures.push_back({spec.label, spec.type, static_cast<std::ptrdiff_t>(k),
                                 spec.prices[k], std::numeric_limits<double>::quiet_NaN(),
                                 statuses[k],
                                 std::string("utilization solve failed (") +
                                     core::to_string(statuses[k]) + ")"});
      continue;
    }
    add_state_row(table, spec.prices[k], states[k]);
  }
  return table;
}

io::SweepTable ScenarioRunner::run_equilibrium(const ExperimentSpec& spec,
                                               ExperimentResult& result) const {
  const core::SubsidizationGame game(scenario_.market, spec.price, spec.cap);
  const core::NashResult nash = core::solve_nash(game);
  io::SweepTable table({"cp", "subsidy", "t", "m", "lambda", "theta", "utility"});
  if (collapsed(nash)) {
    result.converged = false;
    result.failures.push_back({spec.label, spec.type, -1, spec.price, spec.cap,
                               failure_status(nash.diagnostics), nash.diagnostics.detail});
    return table;
  }
  count_rescue(nash, result);
  result.converged = result.converged && nash.converged;
  for (std::size_t i = 0; i < nash.state.providers.size(); ++i) {
    const core::CpState& cp = nash.state.providers[i];
    table.add_row({static_cast<double>(i), cp.subsidy, cp.effective_price, cp.population,
                   cp.per_user_rate, cp.throughput, cp.utility});
  }
  return table;
}

io::SweepTable ScenarioRunner::run_policy(const ExperimentSpec& spec,
                                          ExperimentResult& result) const {
  const core::PriceResponse response = spec.fixed_price
                                           ? core::PriceResponse::fixed(spec.price)
                                           : core::PriceResponse::monopoly();
  const core::PolicyAnalyzer analyzer(scenario_.market, response);
  // Each cap evaluation carries its own outcome so one collapsed cap cannot
  // abort its siblings (the pool rethrow would).
  struct PolicyOutcome {
    core::PolicyPoint point;
    core::SolveStatus status = core::SolveStatus::ok;
    std::string detail;
  };
  // Cold, independent evaluations: rows are identical for any job count.
  const std::vector<PolicyOutcome> outcomes = runtime::parallel_map(
      spec.caps, effective_jobs(spec), [&analyzer](const double& cap) {
        PolicyOutcome outcome;
        try {
          outcome.point = analyzer.evaluate(cap);
        } catch (const std::runtime_error& e) {
          outcome.status = classify_exception(e.what());
          outcome.detail = e.what();
        }
        return outcome;
      });
  io::SweepTable table({"q", "price", "phi", "theta", "revenue", "welfare"});
  for (std::size_t k = 0; k < outcomes.size(); ++k) {
    const PolicyOutcome& outcome = outcomes[k];
    if (core::failed(outcome.status)) {
      result.converged = false;
      result.failures.push_back({spec.label, spec.type, static_cast<std::ptrdiff_t>(k),
                                 std::numeric_limits<double>::quiet_NaN(), spec.caps[k],
                                 outcome.status, outcome.detail});
      continue;
    }
    const core::PolicyPoint& point = outcome.point;
    table.add_row({point.policy_cap, point.price, point.state.utilization,
                   point.state.aggregate_throughput, point.state.revenue,
                   point.state.welfare});
  }
  return table;
}

io::SweepTable ScenarioRunner::run_figure(const ExperimentSpec& spec,
                                          ExperimentResult& result) const {
  runtime::SweepOptions options;
  options.jobs = effective_jobs(spec);
  options.chain_length = spec.chain_length;
  options.numa = effective_numa();
  const runtime::ParallelSweepRunner runner(scenario_.market, options);
  io::SweepTable table({"q", "p", "phi", "theta", "revenue", "welfare"});
  const std::vector<runtime::SweepRow> rows = runner.run(spec.caps, spec.prices);
  for (std::size_t k = 0; k < rows.size(); ++k) {
    const runtime::SweepRow& row = rows[k];
    if (collapsed(row.result)) {
      result.converged = false;
      result.failures.push_back({spec.label, spec.type, static_cast<std::ptrdiff_t>(k),
                                 row.price, row.policy_cap,
                                 failure_status(row.result.diagnostics),
                                 row.result.diagnostics.detail});
      continue;
    }
    count_rescue(row.result, result);
    result.converged = result.converged && row.result.converged;
    table.add_row({row.policy_cap, row.price, row.result.state.utilization,
                   row.result.state.aggregate_throughput, row.result.state.revenue,
                   row.result.state.welfare});
  }
  return table;
}

io::SweepTable ScenarioRunner::run_simulation(const ExperimentSpec& spec,
                                              ExperimentResult& result) const {
  // The analytic anchor first: the Nash subsidies (zeros when cap <= 0) fix
  // the agent engine's effective prices, and the same reference point is what
  // a `validate =` block holds the stochastic steady state against.
  const core::EquilibriumReference reference =
      core::compute_equilibrium_reference(scenario_.market, spec.price, spec.cap);
  result.converged = result.converged && reference.nash_converged;

  sim::SimConfig config;
  config.price = spec.price;
  config.subsidies = reference.subsidies;
  config.ticks = spec.sim_ticks;
  config.replicas = spec.sim_replicas;
  config.snapshot_every = spec.sim_snapshot;
  config.jobs = effective_jobs(spec);
  config.numa = effective_numa();
  sim::AgentMarketEngine engine(
      scenario_.market,
      sim::AgentMarketEngine::uniform_groups(scenario_.market, spec.sim_users, spec.sim_seed,
                                             spec.sim_wakeup, spec.sim_noise,
                                             spec.sim_congestion),
      std::move(config));
  const sim::SimResult run_result = engine.run();

  if (run_result.failed) {
    result.converged = false;
    result.failures.push_back({spec.label, spec.type, -1, spec.price, spec.cap,
                               classify_exception(run_result.failure_detail),
                               run_result.failure_detail});
    return run_result.snapshots;  // Snapshots taken before the abort survive.
  }
  for (std::size_t r = 0; r < run_result.statuses.size(); ++r) {
    if (!core::failed(run_result.statuses[r])) continue;
    result.converged = false;
    result.failures.push_back({spec.label, spec.type, static_cast<std::ptrdiff_t>(r),
                               spec.price, spec.cap, run_result.statuses[r],
                               "replica " + std::to_string(r) +
                                   " final utilization solve failed (" +
                                   core::to_string(run_result.statuses[r]) + ")"});
  }

  if (spec.sim_validate >= 0.0) {
    const sim::CrossValidationReport validation =
        sim::validate_against_reference(run_result, reference, spec.sim_validate);
    for (const sim::ValidationCheck& check : validation.checks) {
      if (check.pass) continue;
      result.converged = false;
      result.failures.push_back(
          {spec.label, spec.type, -1, spec.price, spec.cap,
           core::SolveStatus::validation_failure,
           check.quantity + ": simulated " + io::format_double(check.simulated, 6) +
               " vs analytic " + io::format_double(check.analytic, 6) + " (error " +
               io::format_double(check.error, 6) + " > tolerance " +
               io::format_double(validation.tolerance, 6) + ")"});
    }
  }
  return run_result.snapshots;
}

void ScenarioRunner::write_errors_csv(ScenarioReport& report) const {
  if (report.num_failures() == 0) return;
  const std::string name =
      report.scenario_name.empty() ? std::string("scenario") : report.scenario_name;
  std::string path = name + ".errors.csv";
  if (!options_.output_dir.empty()) path = options_.output_dir + "/" + path;
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) std::filesystem::create_directories(parent);
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << "block,type,row,price,cap,status,detail\n";
  for (const ExperimentResult& result : report.experiments) {
    for (const ScenarioFailure& failure : result.failures) {
      out << csv_field(failure.block_label) << ',' << to_string(failure.type) << ',';
      if (failure.row >= 0) out << failure.row;
      out << ',' << coord_field(failure.price, options_.precision) << ','
          << coord_field(failure.cap, options_.precision) << ','
          << core::to_string(failure.status) << ',' << csv_field(failure.detail) << '\n';
    }
  }
  report.errors_path = path;
}

ScenarioReport ScenarioRunner::run() const {
  ScenarioReport report;
  report.scenario_name = scenario_.name;
  for (const ExperimentSpec& spec : scenario_.experiments) {
    ExperimentResult result;
    result.label = spec.label;
    result.type = spec.type;
    try {
      switch (spec.type) {
        case ExperimentType::sweep:
          result.table = run_sweep(spec, result);
          break;
        case ExperimentType::one_sided:
          result.table = run_one_sided(spec, result);
          break;
        case ExperimentType::equilibrium:
          result.table = run_equilibrium(spec, result);
          break;
        case ExperimentType::policy:
          result.table = run_policy(spec, result);
          break;
        case ExperimentType::figure:
          result.table = run_figure(spec, result);
          break;
        case ExperimentType::simulation:
          result.table = run_simulation(spec, result);
          break;
      }
    } catch (const std::runtime_error& e) {
      // A whole-block collapse (e.g. an injected pool-task fault surfacing
      // through the sweep pool). Strict mode keeps the legacy abort;
      // otherwise the block is recorded unwritten and the run continues.
      if (options_.strict) throw;
      result.converged = false;
      result.failures.push_back({spec.label, spec.type, -1,
                                 std::numeric_limits<double>::quiet_NaN(),
                                 std::numeric_limits<double>::quiet_NaN(),
                                 classify_exception(e.what()), e.what()});
      report.experiments.push_back(std::move(result));
      continue;
    }
    if (options_.strict && !result.failures.empty()) {
      const ScenarioFailure& first = result.failures.front();
      throw std::runtime_error("scenario block '" + spec.label + "' failed (status " +
                               std::string(core::to_string(first.status)) +
                               "): " + first.detail);
    }
    if (!spec.output.empty()) {
      result.output_path = resolve_output(spec.output);
      const std::filesystem::path parent =
          std::filesystem::path(result.output_path).parent_path();
      if (!parent.empty()) std::filesystem::create_directories(parent);
      io::write_csv_file(result.output_path, result.table, options_.precision);
    }
    report.experiments.push_back(std::move(result));
  }
  write_errors_csv(report);
  return report;
}

}  // namespace subsidy::scenario
