#include "subsidy/scenario/spec_grammar.hpp"

#include <algorithm>
#include <cstddef>
#include <map>
#include <stdexcept>

#include "subsidy/numerics/grid.hpp"

namespace subsidy::scenario {

namespace {

std::string trim(const std::string& text) {
  const std::size_t begin = text.find_first_not_of(" \t");
  if (begin == std::string::npos) return "";
  const std::size_t end = text.find_last_not_of(" \t");
  return text.substr(begin, end - begin + 1);
}

/// "k=v,k=v" parameter body (whitespace around keys/values ignored) with
/// required/optional lookup and unknown-key detection, all errors naming
/// `context`.
class ParamList {
 public:
  ParamList(std::string context, const std::string& body) : context_(std::move(context)) {
    if (body.empty()) return;
    for (const std::string& field : split_list(body, ',')) {
      const std::size_t eq = field.find('=');
      if (eq == std::string::npos) {
        throw std::invalid_argument(context_ + ": expected name=value, got '" + field + "'");
      }
      const std::string key = trim(field.substr(0, eq));
      if (key.empty()) {
        throw std::invalid_argument(context_ + ": expected name=value, got '" + field + "'");
      }
      if (!params_.emplace(key, trim(field.substr(eq + 1))).second) {
        throw std::invalid_argument(context_ + ": duplicate parameter '" + key + "'");
      }
    }
  }

  [[nodiscard]] double require(const std::string& key) {
    const auto it = params_.find(key);
    if (it == params_.end()) {
      throw std::invalid_argument(context_ + ": missing required parameter '" + key + "'");
    }
    const double value = parse_number(it->second, context_ + " " + key);
    params_.erase(it);
    return value;
  }

  [[nodiscard]] double get_or(const std::string& key, double fallback) {
    const auto it = params_.find(key);
    if (it == params_.end()) return fallback;
    const double value = parse_number(it->second, context_ + " " + key);
    params_.erase(it);
    return value;
  }

  /// Call after all lookups: any leftover key is unknown.
  void finish() const {
    if (!params_.empty()) {
      throw std::invalid_argument(context_ + ": unknown parameter '" +
                                  params_.begin()->first + "'");
    }
  }

 private:
  std::string context_;
  std::map<std::string, std::string> params_;
};

/// Splits "family:params" into (family, params); params may be empty.
std::pair<std::string, std::string> split_family(const std::string& spec) {
  const std::size_t colon = spec.find(':');
  if (colon == std::string::npos) return {spec, ""};
  return {spec.substr(0, colon), spec.substr(colon + 1)};
}

}  // namespace

double parse_number(const std::string& text, const std::string& what) {
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument(what + ": '" + text + "' is not a number");
  }
  if (pos != text.size()) {
    throw std::invalid_argument(what + ": '" + text + "' is not a number");
  }
  return value;
}

std::vector<std::string> split_list(const std::string& text, char separator) {
  std::vector<std::string> parts;
  parts.reserve(static_cast<std::size_t>(std::count(text.begin(), text.end(), separator)) + 1);
  std::string current;
  for (char c : text) {
    if (c == separator) {
      parts.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  parts.push_back(current);
  return parts;
}

std::shared_ptr<const econ::DemandCurve> parse_demand_spec(const std::string& spec) {
  const auto [family, body] = split_family(spec);
  ParamList params("demand spec '" + spec + "'", body);
  std::shared_ptr<const econ::DemandCurve> curve;
  if (family == "exp") {
    const double alpha = params.require("alpha");
    curve = std::make_shared<econ::ExponentialDemand>(alpha, params.get_or("scale", 1.0));
  } else if (family == "logit") {
    const double m0 = params.get_or("m0", 1.0);
    const double k = params.require("k");
    curve = std::make_shared<econ::LogitDemand>(m0, k, params.require("t0"));
  } else if (family == "iso" || family == "isoelastic") {
    const double m0 = params.get_or("m0", 1.0);
    curve = std::make_shared<econ::IsoelasticDemand>(m0, params.require("eps"));
  } else if (family == "linear") {
    const double m0 = params.get_or("m0", 1.0);
    curve = std::make_shared<econ::LinearDemand>(m0, params.require("tmax"));
  } else {
    throw std::invalid_argument("unknown demand family '" + family + "'; " +
                                demand_spec_help());
  }
  params.finish();
  return curve;
}

std::shared_ptr<const econ::ThroughputCurve> parse_throughput_spec(const std::string& spec) {
  const auto [family, body] = split_family(spec);
  ParamList params("throughput spec '" + spec + "'", body);
  const double beta = params.require("beta");
  const double lambda0 = params.get_or("lambda0", 1.0);
  params.finish();
  if (family == "exp") return std::make_shared<econ::ExponentialThroughput>(beta, lambda0);
  if (family == "power") return std::make_shared<econ::PowerLawThroughput>(beta, lambda0);
  if (family == "delay") return std::make_shared<econ::DelayThroughput>(beta, lambda0);
  throw std::invalid_argument("unknown throughput family '" + family + "'; " +
                              throughput_spec_help());
}

std::shared_ptr<const econ::UtilizationModel> parse_utilization_spec(const std::string& spec) {
  if (spec == "linear") return std::make_shared<econ::LinearUtilization>();
  if (spec == "delay") return std::make_shared<econ::DelayUtilization>();
  if (spec.rfind("power:", 0) == 0) {
    return std::make_shared<econ::PowerUtilization>(
        parse_number(spec.substr(6), "utilization gamma"));
  }
  throw std::invalid_argument("unknown utilization model '" + spec + "'; " +
                              utilization_spec_help());
}

std::vector<double> parse_grid_spec(const std::string& spec) {
  if (spec.empty()) throw std::invalid_argument("grid spec is empty; " + grid_spec_help());
  const std::vector<std::string> range = split_list(spec, ':');
  if (range.size() == 3) {
    const double lo = parse_number(range[0], "grid lower bound");
    const double hi = parse_number(range[1], "grid upper bound");
    const double points = parse_number(range[2], "grid point count");
    if (points < 1.0 || points != static_cast<double>(static_cast<std::size_t>(points))) {
      throw std::invalid_argument("grid point count '" + range[2] +
                                  "' must be a positive integer");
    }
    if (points == 1.0) return {lo};
    return num::linspace(lo, hi, static_cast<std::size_t>(points));
  }
  if (range.size() != 1) {
    throw std::invalid_argument("grid spec '" + spec + "' is malformed; " + grid_spec_help());
  }
  const std::vector<std::string> cells = split_list(spec, ',');
  std::vector<double> values;
  values.reserve(cells.size());
  for (const std::string& cell : cells) {
    values.push_back(parse_number(cell, "grid value"));
  }
  return values;
}

std::string demand_spec_help() {
  return "expected exp:alpha=<a>[,scale=<s>], logit:k=<k>,t0=<t0>[,m0=<m>], "
         "iso:eps=<e>[,m0=<m>] or linear:tmax=<t>[,m0=<m>]";
}

std::string throughput_spec_help() {
  return "expected exp:beta=<b>[,lambda0=<l>], power:beta=<b>[,lambda0=<l>] "
         "or delay:beta=<b>[,lambda0=<l>]";
}

std::string utilization_spec_help() {
  return "expected linear, delay or power:<gamma>";
}

std::string grid_spec_help() {
  return "expected <lo>:<hi>:<points>, a comma-separated list, or one number";
}

}  // namespace subsidy::scenario
