#include "subsidy/scenario/scenario_file.hpp"

#include <fstream>
#include <optional>
#include <sstream>
#include <utility>

#include "subsidy/market/scenarios.hpp"
#include "subsidy/scenario/spec_grammar.hpp"

namespace subsidy::scenario {

namespace {

std::string trim(const std::string& text) {
  const std::size_t begin = text.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const std::size_t end = text.find_last_not_of(" \t\r");
  return text.substr(begin, end - begin + 1);
}

/// One `key = value` entry with its source line.
struct Entry {
  std::string key;
  std::string value;
  std::size_t line = 0;
};

/// One `[section]` with its entries, in file order.
struct RawSection {
  std::string name;
  std::size_t line = 0;
  std::vector<Entry> entries;
};

/// Typed accessor over a RawSection: required/optional lookups, grid and
/// spec parsing, consumed-key tracking so leftovers raise "unknown key"
/// errors — all with file:line context.
class SectionReader {
 public:
  SectionReader(const std::string& file, const RawSection& section)
      : file_(file), section_(section), used_(section.entries.size(), false) {}

  [[nodiscard]] const std::string& name() const noexcept { return section_.name; }
  [[nodiscard]] std::size_t line() const noexcept { return section_.line; }

  [[nodiscard]] bool has(const std::string& key) const {
    return find(key) != section_.entries.size();
  }

  [[nodiscard]] std::string require(const std::string& key) {
    const std::size_t k = find(key);
    if (k == section_.entries.size()) {
      throw ScenarioParseError(file_, section_.line,
                               "[" + section_.name + "] is missing required key '" + key + "'");
    }
    used_[k] = true;
    return section_.entries[k].value;
  }

  [[nodiscard]] std::string get_or(const std::string& key, const std::string& fallback) {
    const std::size_t k = find(key);
    if (k == section_.entries.size()) return fallback;
    used_[k] = true;
    return section_.entries[k].value;
  }

  [[nodiscard]] double require_number(const std::string& key) {
    return parse_at(key, require(key),
                    [&](const std::string& v) { return parse_number(v, "'" + key + "'"); });
  }

  [[nodiscard]] double number_or(const std::string& key, double fallback) {
    if (!has(key)) return fallback;
    return require_number(key);
  }

  [[nodiscard]] std::size_t count_or(const std::string& key, std::size_t fallback) {
    if (!has(key)) return fallback;
    const double value = require_number(key);
    if (value < 0.0 || value != static_cast<double>(static_cast<std::size_t>(value))) {
      throw ScenarioParseError(file_, line_of(key),
                               "'" + key + "' must be a non-negative integer");
    }
    return static_cast<std::size_t>(value);
  }

  [[nodiscard]] std::vector<double> require_grid(const std::string& key) {
    return parse_at(key, require(key), parse_grid_spec);
  }

  /// Applies `parse` to an already-consumed value, rebadging
  /// std::invalid_argument as a line-numbered error at the key's line.
  template <typename Parser>
  [[nodiscard]] auto parse_at(const std::string& key, const std::string& value,
                              Parser&& parse) -> decltype(parse(value)) {
    try {
      return parse(value);
    } catch (const std::invalid_argument& err) {
      throw ScenarioParseError(file_, line_of(key), err.what());
    }
  }

  /// Call after all lookups: the first unconsumed entry is an unknown key.
  void finish() const {
    for (std::size_t k = 0; k < used_.size(); ++k) {
      if (!used_[k]) {
        throw ScenarioParseError(file_, section_.entries[k].line,
                                 "unknown key '" + section_.entries[k].key + "' in [" +
                                     section_.name + "]");
      }
    }
  }

  [[nodiscard]] std::size_t line_of(const std::string& key) const {
    const std::size_t k = find(key);
    return k == section_.entries.size() ? section_.line : section_.entries[k].line;
  }

 private:
  [[nodiscard]] std::size_t find(const std::string& key) const {
    for (std::size_t k = 0; k < section_.entries.size(); ++k) {
      if (section_.entries[k].key == key) return k;
    }
    return section_.entries.size();
  }

  const std::string& file_;
  const RawSection& section_;
  mutable std::vector<bool> used_;
};

std::vector<RawSection> parse_sections(std::istream& in, const std::string& file) {
  std::vector<RawSection> sections;
  std::string raw_line;
  std::size_t line_number = 0;
  while (std::getline(in, raw_line)) {
    ++line_number;
    const std::size_t hash = raw_line.find('#');
    const std::string line = trim(hash == std::string::npos ? raw_line : raw_line.substr(0, hash));
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']' || line.size() < 3) {
        throw ScenarioParseError(file, line_number, "malformed section header '" + line + "'");
      }
      sections.push_back({trim(line.substr(1, line.size() - 2)), line_number, {}});
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      throw ScenarioParseError(file, line_number,
                               "expected 'key = value' or '[section]', got '" + line + "'");
    }
    if (sections.empty()) {
      throw ScenarioParseError(file, line_number, "entry before any [section] header");
    }
    const std::string key = trim(line.substr(0, eq));
    if (key.empty()) {
      throw ScenarioParseError(file, line_number, "missing key before '='");
    }
    for (const Entry& entry : sections.back().entries) {
      if (entry.key == key) {
        throw ScenarioParseError(file, line_number,
                                 "duplicate key '" + key + "' in [" + sections.back().name +
                                     "] (first set on line " + std::to_string(entry.line) +
                                     ")");
      }
    }
    sections.back().entries.push_back({key, trim(line.substr(eq + 1)), line_number});
  }
  return sections;
}

econ::Market build_market(const std::string& file, const RawSection& market_section,
                          const std::vector<const RawSection*>& provider_sections) {
  SectionReader market(file, market_section);

  if (market.has("base")) {
    const std::string base = market.require("base");
    if (!provider_sections.empty()) {
      throw ScenarioParseError(file, provider_sections.front()->line,
                               "[provider] sections cannot be combined with base = " + base);
    }
    std::optional<econ::Market> mkt;
    if (base == "section3") {
      mkt = subsidy::market::section3_market();
    } else if (base == "section5") {
      mkt = subsidy::market::section5_market();
    } else {
      throw ScenarioParseError(file, market.line_of("base"),
                               "unknown base market '" + base + "' (expected section3 or section5)");
    }
    if (market.has("capacity")) mkt = mkt->with_capacity(market.require_number("capacity"));
    if (market.has("utilization")) {
      mkt = mkt->with_utilization_model(market.parse_at(
          "utilization", market.require("utilization"), parse_utilization_spec));
    }
    market.finish();
    return *std::move(mkt);
  }

  const double capacity = market.number_or("capacity", 1.0);
  std::shared_ptr<const econ::UtilizationModel> utilization =
      market.has("utilization")
          ? market.parse_at("utilization", market.require("utilization"), parse_utilization_spec)
          : std::make_shared<econ::LinearUtilization>();
  // Defaults are parsed *here*, so a bad [market]-level spec is reported at
  // the [market] key's line, not at whichever provider inherits it first.
  // The parsed curves are immutable and shared across inheriting providers.
  std::shared_ptr<const econ::DemandCurve> default_demand;
  if (market.has("demand")) {
    default_demand = market.parse_at("demand", market.require("demand"), parse_demand_spec);
  }
  std::shared_ptr<const econ::ThroughputCurve> default_throughput;
  if (market.has("throughput")) {
    default_throughput =
        market.parse_at("throughput", market.require("throughput"), parse_throughput_spec);
  }
  const double default_v = market.number_or("v", 1.0);
  market.finish();

  if (provider_sections.empty()) {
    throw ScenarioParseError(file, market_section.line,
                             "need at least one [provider] section (or base = section3/section5)");
  }

  std::vector<econ::ContentProviderSpec> providers;
  for (std::size_t k = 0; k < provider_sections.size(); ++k) {
    SectionReader provider(file, *provider_sections[k]);
    econ::ContentProviderSpec cp;
    cp.name = provider.get_or("name", "cp" + std::to_string(k));
    cp.demand = provider.has("demand")
                    ? provider.parse_at("demand", provider.require("demand"), parse_demand_spec)
                    : default_demand;
    if (!cp.demand) {
      throw ScenarioParseError(file, provider.line(),
                               "provider '" + cp.name +
                                   "' has no demand spec (set demand = here or in [market])");
    }
    cp.throughput = provider.has("throughput")
                        ? provider.parse_at("throughput", provider.require("throughput"),
                                            parse_throughput_spec)
                        : default_throughput;
    if (!cp.throughput) {
      throw ScenarioParseError(file, provider.line(),
                               "provider '" + cp.name +
                                   "' has no throughput spec (set throughput = here or in [market])");
    }
    cp.profitability = provider.number_or("v", default_v);
    provider.finish();
    providers.push_back(std::move(cp));
  }
  try {
    return econ::Market(econ::IspSpec{capacity}, std::move(utilization), std::move(providers));
  } catch (const std::invalid_argument& err) {
    throw ScenarioParseError(file, market_section.line, err.what());
  }
}

ExperimentSpec build_experiment(const std::string& file, ExperimentType type,
                                const RawSection& section) {
  SectionReader reader(file, section);
  ExperimentSpec spec;
  spec.type = type;
  spec.line = section.line;
  spec.label = reader.get_or("label", to_string(type));
  spec.jobs = reader.count_or("jobs", 1);
  spec.output = reader.get_or("out", "");
  switch (type) {
    case ExperimentType::sweep:
      spec.prices = reader.require_grid("prices");
      spec.cap = reader.number_or("cap", 0.0);
      spec.chain_length = reader.count_or("chain", 8);
      break;
    case ExperimentType::one_sided:
      spec.prices = reader.require_grid("prices");
      break;
    case ExperimentType::equilibrium:
      spec.price = reader.require_number("price");
      spec.cap = reader.number_or("cap", 0.0);
      break;
    case ExperimentType::policy:
      spec.caps = reader.require_grid("caps");
      spec.fixed_price = reader.has("price");
      if (spec.fixed_price) spec.price = reader.require_number("price");
      break;
    case ExperimentType::figure:
      spec.prices = reader.require_grid("prices");
      spec.caps = reader.require_grid("caps");
      spec.chain_length = reader.count_or("chain", 0);
      break;
    case ExperimentType::simulation:
      spec.price = reader.require_number("price");
      spec.cap = reader.number_or("cap", 0.0);
      spec.sim_users = reader.count_or("users", 2000);
      spec.sim_ticks = reader.count_or("ticks", 120);
      spec.sim_seed = static_cast<std::uint64_t>(reader.count_or("seed", 1));
      spec.sim_wakeup = reader.count_or("wakeup", 1);
      spec.sim_replicas = reader.count_or("replicas", 1);
      spec.sim_noise = reader.number_or("noise", 0.0);
      spec.sim_congestion = reader.number_or("congestion", 0.0);
      spec.sim_snapshot = reader.count_or("snapshot", 1);
      spec.sim_validate = reader.number_or("validate", -1.0);
      if (spec.sim_users == 0) {
        throw ScenarioParseError(file, reader.line_of("users"), "'users' must be >= 1");
      }
      if (spec.sim_ticks == 0) {
        throw ScenarioParseError(file, reader.line_of("ticks"), "'ticks' must be >= 1");
      }
      if (spec.sim_replicas == 0) {
        throw ScenarioParseError(file, reader.line_of("replicas"), "'replicas' must be >= 1");
      }
      break;
  }
  reader.finish();
  return spec;
}

std::optional<ExperimentType> experiment_type_of(const std::string& section_name) {
  if (section_name == "sweep") return ExperimentType::sweep;
  if (section_name == "one_sided") return ExperimentType::one_sided;
  if (section_name == "equilibrium") return ExperimentType::equilibrium;
  if (section_name == "policy") return ExperimentType::policy;
  if (section_name == "figure") return ExperimentType::figure;
  if (section_name == "simulation") return ExperimentType::simulation;
  return std::nullopt;
}

}  // namespace

ScenarioParseError::ScenarioParseError(const std::string& file, std::size_t line,
                                       const std::string& message)
    : std::runtime_error(file + ":" + std::to_string(line) + ": " + message), line_(line) {}

std::string to_string(ExperimentType type) {
  switch (type) {
    case ExperimentType::sweep: return "sweep";
    case ExperimentType::one_sided: return "one_sided";
    case ExperimentType::equilibrium: return "equilibrium";
    case ExperimentType::policy: return "policy";
    case ExperimentType::figure: return "figure";
    case ExperimentType::simulation: return "simulation";
  }
  return "unknown";
}

Scenario parse_scenario(std::istream& in, const std::string& filename) {
  const std::vector<RawSection> sections = parse_sections(in, filename);

  const RawSection* scenario_section = nullptr;
  const RawSection* market_section = nullptr;
  std::vector<const RawSection*> provider_sections;
  std::vector<const RawSection*> experiment_sections;
  for (const RawSection& section : sections) {
    if (section.name == "scenario") {
      if (scenario_section != nullptr) {
        throw ScenarioParseError(filename, section.line, "duplicate [scenario] section");
      }
      scenario_section = &section;
    } else if (section.name == "market") {
      if (market_section != nullptr) {
        throw ScenarioParseError(filename, section.line, "duplicate [market] section");
      }
      market_section = &section;
    } else if (section.name == "provider") {
      provider_sections.push_back(&section);
    } else if (experiment_type_of(section.name).has_value()) {
      experiment_sections.push_back(&section);
    } else {
      throw ScenarioParseError(filename, section.line,
                               "unknown section [" + section.name +
                                   "] (expected scenario, market, provider, sweep, one_sided, "
                                   "equilibrium, policy, figure or simulation)");
    }
  }
  if (market_section == nullptr) {
    throw ScenarioParseError(filename, 1, "scenario has no [market] section");
  }

  std::string name = "scenario";
  std::string description;
  if (scenario_section != nullptr) {
    SectionReader reader(filename, *scenario_section);
    name = reader.get_or("name", name);
    description = reader.get_or("description", "");
    reader.finish();
  }

  Scenario scenario{std::move(name), std::move(description),
                    build_market(filename, *market_section, provider_sections), {}};
  scenario.experiments.reserve(experiment_sections.size());
  for (const RawSection* section : experiment_sections) {
    scenario.experiments.push_back(
        build_experiment(filename, *experiment_type_of(section->name), *section));
  }
  if (scenario.experiments.empty()) {
    throw ScenarioParseError(filename, market_section->line,
                             "scenario has no experiment blocks");
  }
  return scenario;
}

Scenario parse_scenario_text(const std::string& text, const std::string& filename) {
  std::istringstream in(text);
  return parse_scenario(in, filename);
}

Scenario parse_scenario_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open scenario file '" + path + "'");
  }
  return parse_scenario(in, path);
}

}  // namespace subsidy::scenario
