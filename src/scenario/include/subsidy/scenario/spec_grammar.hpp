// The one curve/model/grid spec grammar shared by scenario files and the
// CLI's `--market` option, so there is a single textual surface for every
// market ingredient:
//
//   demand       exp:alpha=<a>[,scale=<s>]
//                logit:k=<k>,t0=<t0>[,m0=<m>]
//                iso:eps=<e>[,m0=<m>]         (alias: isoelastic)
//                linear:tmax=<t>[,m0=<m>]
//   throughput   exp:beta=<b>[,lambda0=<l>]
//                power:beta=<b>[,lambda0=<l>]
//                delay:beta=<b>[,lambda0=<l>]
//   utilization  linear | delay | power:<gamma>
//   grid         <lo>:<hi>:<points> (inclusive linspace) | <a>,<b>,... | <x>
//
// Every parser throws std::invalid_argument with a human-readable message on
// malformed input; the scenario-file parser wraps these with file:line
// context.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "subsidy/econ/demand.hpp"
#include "subsidy/econ/throughput.hpp"
#include "subsidy/econ/utilization.hpp"

namespace subsidy::scenario {

/// Parses a demand-curve spec, e.g. "exp:alpha=2" or "logit:k=4,t0=0.5".
[[nodiscard]] std::shared_ptr<const econ::DemandCurve> parse_demand_spec(
    const std::string& spec);

/// Parses a throughput-curve spec, e.g. "exp:beta=2" or "power:beta=1.5".
[[nodiscard]] std::shared_ptr<const econ::ThroughputCurve> parse_throughput_spec(
    const std::string& spec);

/// Parses a utilization-model spec: "linear", "delay" or "power:<gamma>".
[[nodiscard]] std::shared_ptr<const econ::UtilizationModel> parse_utilization_spec(
    const std::string& spec);

/// Parses a grid spec: "lo:hi:points" (linspace, endpoints included),
/// a comma-separated list, or a single number.
[[nodiscard]] std::vector<double> parse_grid_spec(const std::string& spec);

/// Parses one number, naming `what` in the error message.
[[nodiscard]] double parse_number(const std::string& text, const std::string& what);

/// Splits `text` at every `separator`, keeping empty cells
/// ("a,,b" -> {"a", "", "b"}). Shared by the spec parsers and the CLI
/// market grammar.
[[nodiscard]] std::vector<std::string> split_list(const std::string& text, char separator);

/// One-line grammar summaries for --help output and error messages.
[[nodiscard]] std::string demand_spec_help();
[[nodiscard]] std::string throughput_spec_help();
[[nodiscard]] std::string utilization_spec_help();
[[nodiscard]] std::string grid_spec_help();

}  // namespace subsidy::scenario
