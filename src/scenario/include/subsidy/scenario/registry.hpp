// Built-in named scenarios: the paper's Section 3 / Section 5 markets and
// figure suite, plus a mixed-family showcase, stored as scenario-file *text*
// so the registry exercises exactly the same parser as user files (and
// `subsidy_cli scenario print <name>` can emit a ready-to-edit template).
// The files under examples/scenarios/ are verbatim copies of these texts.
#pragma once

#include <string>
#include <vector>

#include "subsidy/scenario/scenario_file.hpp"

namespace subsidy::scenario {

/// One registry listing row.
struct RegistryEntry {
  std::string name;
  std::string description;
};

/// All built-in scenarios, in presentation order.
[[nodiscard]] std::vector<RegistryEntry> registry_entries();

/// True when `name` names a built-in scenario.
[[nodiscard]] bool is_registry_scenario(const std::string& name);

/// The scenario-file text of a built-in scenario. Throws
/// std::invalid_argument for unknown names.
[[nodiscard]] std::string registry_scenario_text(const std::string& name);

/// Parses a built-in scenario. Throws std::invalid_argument for unknown
/// names.
[[nodiscard]] Scenario make_registry_scenario(const std::string& name);

}  // namespace subsidy::scenario
