// ScenarioRunner: executes a parsed Scenario's experiment blocks on the
// compiled-kernel fast path.
//
// Construction compiles the market once into a ModelEvaluator (the
// core::MarketKernel behind it); every one_sided block runs its batched
// solve straight through that kernel. The equilibrium experiments dispatch
// over the existing runtime::ThreadPool / chain-partition machinery —
// ParallelSweepRunner for price/figure grids, parallel_map for policy caps —
// whose solvers compile their own kernels per block, exactly as the CLI and
// bench sweeps always have.
//
// Determinism: every experiment's rows are a pure function of the scenario —
// the chain partition depends only on the grids and the block's `chain`
// value, never on the job count, and policy caps are solved cold and
// independently — so any `jobs` value (including RunOptions::jobs overrides)
// produces bit-identical tables and therefore byte-identical CSV files.
#pragma once

#include <cstddef>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "subsidy/core/evaluator.hpp"
#include "subsidy/core/solve_status.hpp"
#include "subsidy/io/series.hpp"
#include "subsidy/runtime/topology.hpp"
#include "subsidy/scenario/scenario_file.hpp"

namespace subsidy::scenario {

/// Run-time knobs (everything here is presentation or scheduling; none of it
/// changes the computed rows except `precision` formatting and `strict`
/// failure handling — fault-free runs are byte-identical either way).
struct RunOptions {
  /// Overrides every experiment block's `jobs` when set (the CLI's --jobs N).
  std::optional<std::size_t> jobs;

  /// Memory-domain sharding for sweeps, figures and simulations (the CLI's
  /// --numa). Unset falls back to SUBSIDY_NUMA / auto. Never a results
  /// knob: output bytes are identical for every setting.
  std::optional<runtime::NumaConfig> numa;

  /// Directory prepended to relative `out =` paths (absolute paths win).
  std::string output_dir;

  /// CSV float precision.
  int precision = 10;

  /// Rethrow on the first solver failure (the pre-diagnostics abort)
  /// instead of degrading gracefully: skipping the failed rows, recording
  /// them in ExperimentResult::failures and the errors.csv sidecar, and
  /// finishing the remaining blocks.
  bool strict = false;
};

/// One failed unit of work inside an experiment block: a row whose solver
/// collapsed (skipped from the table), or a whole block that threw
/// (`row == -1`, no table written).
struct ScenarioFailure {
  std::string block_label;
  ExperimentType type = ExperimentType::sweep;
  std::ptrdiff_t row = -1;  ///< Row index within the block; -1 = whole block.
  /// Coordinates of the failed solve; NaN marks "not applicable" (e.g. the
  /// cap of a one_sided row, or both for a whole-block failure).
  double price = std::numeric_limits<double>::quiet_NaN();
  double cap = std::numeric_limits<double>::quiet_NaN();
  core::SolveStatus status = core::SolveStatus::ok;
  std::string detail;
};

/// One executed experiment block.
struct ExperimentResult {
  std::string label;
  ExperimentType type = ExperimentType::sweep;
  io::SweepTable table;
  std::string output_path;  ///< File the table was written to; empty if none.
  bool converged = true;    ///< False when any inner Nash solve failed.
  std::vector<ScenarioFailure> failures;  ///< Collapsed solves (rows skipped).
  std::size_t rescued_damped = 0;  ///< Nash rows the damped rung resolved.
  std::size_t rescued_extragradient = 0;  ///< Rows extragradient resolved.
};

/// Everything a scenario run produced.
struct ScenarioReport {
  std::string scenario_name;
  std::vector<ExperimentResult> experiments;
  std::string errors_path;  ///< Sidecar CSV naming every failure; empty if none.

  [[nodiscard]] bool all_converged() const noexcept;
  [[nodiscard]] std::size_t num_failures() const noexcept;
};

/// Executes scenarios. Construction compiles the market kernel; run() may be
/// called repeatedly (each run re-executes every block).
class ScenarioRunner {
 public:
  explicit ScenarioRunner(Scenario scenario, RunOptions options = {});

  [[nodiscard]] const Scenario& scenario() const noexcept { return scenario_; }
  [[nodiscard]] const RunOptions& options() const noexcept { return options_; }

  /// Runs every experiment block in file order, writing CSV sinks as
  /// configured. Throws std::runtime_error when an output file cannot be
  /// written. Solver failures degrade gracefully by default — failed rows
  /// are skipped (partial tables still written), whole-block collapses leave
  /// the block unwritten, and every failure lands in the report plus a
  /// `<scenario>.errors.csv` sidecar next to the outputs; under
  /// RunOptions::strict the first failure is rethrown instead.
  [[nodiscard]] ScenarioReport run() const;

 private:
  [[nodiscard]] std::size_t effective_jobs(const ExperimentSpec& spec) const;
  [[nodiscard]] runtime::NumaConfig effective_numa() const;
  [[nodiscard]] std::string resolve_output(const std::string& path) const;
  void write_errors_csv(ScenarioReport& report) const;

  [[nodiscard]] io::SweepTable run_sweep(const ExperimentSpec& spec,
                                         ExperimentResult& result) const;
  [[nodiscard]] io::SweepTable run_one_sided(const ExperimentSpec& spec,
                                             ExperimentResult& result) const;
  [[nodiscard]] io::SweepTable run_equilibrium(const ExperimentSpec& spec,
                                               ExperimentResult& result) const;
  [[nodiscard]] io::SweepTable run_policy(const ExperimentSpec& spec,
                                          ExperimentResult& result) const;
  [[nodiscard]] io::SweepTable run_figure(const ExperimentSpec& spec,
                                          ExperimentResult& result) const;
  [[nodiscard]] io::SweepTable run_simulation(const ExperimentSpec& spec,
                                              ExperimentResult& result) const;

  Scenario scenario_;
  RunOptions options_;
  core::ModelEvaluator evaluator_;  ///< Compiled once; drives one_sided blocks.
};

}  // namespace subsidy::scenario
