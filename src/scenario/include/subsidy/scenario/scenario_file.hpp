// Declarative scenario files: one file describes a full experiment — the
// market (per-provider demand/throughput curves, utilization model,
// profitabilities) plus any number of experiment blocks — and the
// ScenarioRunner executes it on the compiled-kernel fast path.
//
// Format (INI-style sections, '#' comments, 'key = value' entries):
//
//   [scenario]                         # optional metadata
//   name = my_experiment
//   description = ...
//
//   [market]                           # exactly one
//   base = section5                    # paper market (section3 | section5), or:
//   capacity = 1.0                     #   mu (default 1)
//   utilization = linear               #   linear | delay | power:<gamma>
//   demand = exp:alpha=2               #   provider defaults (optional)
//   throughput = exp:beta=2
//   v = 1.0
//
//   [provider]                         # repeatable (forbidden with base=)
//   name = video
//   demand = logit:k=4,t0=0.5          # falls back to the [market] default
//   throughput = power:beta=1.5
//   v = 0.5
//
//   [sweep]                            # Nash sweep over prices at one cap
//   prices = 0.05:2:41                 # grid: lo:hi:points | list | number
//   cap = 1.0
//   chain = 8                          # warm-start chain length (0 = one chain)
//   jobs = 1                           # worker threads, 0 = hardware (rows jobs-invariant)
//   out = sweep.csv                    # CSV sink (omit to print)
//
//   [one_sided]                        # unsubsidized price sweep (batched)
//   prices = 0.05:2:41
//
//   [equilibrium]                      # one Nash solve, per-provider rows
//   price = 0.8
//   cap = 1.0
//
//   [policy]                           # policy-cap sweep
//   caps = 0,0.5,1,1.5,2
//   price = 0.8                        # fixed ISP price; omit for monopoly p(q)
//
//   [figure]                           # full (cap x price) equilibrium grid
//   prices = 0.05:2:41
//   caps = 0,0.5,1,1.5,2
//   chain = 0
//
//   [simulation]                       # agent market simulation (src/sim)
//   users = 2000                       # agents per provider
//   ticks = 120
//   price = 0.8
//   cap = 1.0                          # > 0: simulate at the Nash subsidies
//   seed = 1
//   wakeup = 4                         # each agent re-decides every k ticks
//   replicas = 2                       # independent lanes, one plane solve
//   noise = 0.02                       # logistic decision temperature
//   congestion = 0                     # Weber-Guerin externality coupling
//   snapshot = 20                      # snapshot interval (0 = final only)
//   validate = 0.05                    # cross-validate vs the analytic point
//
// Every parse error carries the file name and line number.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

#include "subsidy/econ/market.hpp"

namespace subsidy::scenario {

/// Parse failure with file:line context ("fig.scn:12: message").
class ScenarioParseError final : public std::runtime_error {
 public:
  ScenarioParseError(const std::string& file, std::size_t line, const std::string& message);

  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

/// The experiment block kinds a scenario file can request.
enum class ExperimentType { sweep, one_sided, equilibrium, policy, figure, simulation };

[[nodiscard]] std::string to_string(ExperimentType type);

/// One compiled experiment block.
struct ExperimentSpec {
  ExperimentType type = ExperimentType::sweep;
  std::string label;             ///< `label =` or the block's type name.
  std::size_t line = 0;          ///< Section header line (for runner errors).
  std::vector<double> prices;    ///< sweep / one_sided / figure.
  std::vector<double> caps;      ///< policy / figure.
  double cap = 0.0;              ///< sweep / equilibrium.
  double price = 0.0;            ///< equilibrium; policy when fixed_price.
  bool fixed_price = false;      ///< policy: fixed p vs monopoly response p(q).
  std::size_t chain_length = 0;  ///< sweep / figure warm-start chain length.
  std::size_t jobs = 1;          ///< Worker threads, 0 = hardware (never affects results).
  std::string output;            ///< CSV path; empty prints to the report.

  // --- simulation block only ---
  std::size_t sim_users = 2000;     ///< Agents per provider.
  std::size_t sim_ticks = 120;      ///< Simulated ticks.
  std::uint64_t sim_seed = 1;       ///< Base seed of the counter RNG streams.
  std::size_t sim_wakeup = 1;       ///< Each agent re-decides every k ticks.
  std::size_t sim_replicas = 1;     ///< Independent replica lanes.
  double sim_noise = 0.0;           ///< Logistic decision temperature sigma.
  double sim_congestion = 0.0;      ///< Congestion externality coupling c.
  std::size_t sim_snapshot = 1;     ///< Snapshot interval (0 = final tick only).
  double sim_validate = -1.0;       ///< Cross-validation tolerance (< 0 = off).
};

/// A fully parsed scenario: metadata, the market, and the experiment blocks
/// in file order.
struct Scenario {
  std::string name;
  std::string description;
  econ::Market market;
  std::vector<ExperimentSpec> experiments;
};

/// Parses a scenario from a stream; `filename` labels error messages.
[[nodiscard]] Scenario parse_scenario(std::istream& in,
                                      const std::string& filename = "<scenario>");

/// Parses a scenario from an in-memory string.
[[nodiscard]] Scenario parse_scenario_text(const std::string& text,
                                           const std::string& filename = "<scenario>");

/// Parses a scenario file from disk. Throws std::runtime_error when the file
/// cannot be opened, ScenarioParseError on malformed content.
[[nodiscard]] Scenario parse_scenario_file(const std::string& path);

}  // namespace subsidy::scenario
