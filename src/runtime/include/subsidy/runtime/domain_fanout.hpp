// The topology-aware fan-out every sharding layer shares: items are split
// into contiguous per-domain shards, each domain runs its shard on a pool
// pinned to the domain's CPUs, and a per-domain setup hook runs on a pinned
// worker BEFORE any of the domain's items — the first-touch point where
// callers build domain-local kernel replicas (their BatchBinding planes and
// thread_local plane workspaces then allocate on the domain's memory).
//
// Determinism: the item -> domain map is partition_shards(items, domains) —
// a pure function of the counts, never of timing — and fn(i, d) is required
// to be a pure function of the item (the domain argument only selects
// which value-identical replica to read). Combined with the fault-ordinal
// and rethrow disciplines below, output bytes are identical for any jobs
// count, any topology, and the inline path.
#pragma once

#include <algorithm>
#include <cstddef>
#include <exception>
#include <future>
#include <memory>
#include <stdexcept>
#include <vector>

#include "subsidy/numerics/fault_injection.hpp"
#include "subsidy/runtime/thread_pool.hpp"
#include "subsidy/runtime/topology.hpp"

namespace subsidy::runtime {

/// Runs fn(i, d) for every item i in [0, num_items), on domain d's pinned
/// pool, after setup(d) completed on that pool. With jobs <= 1 (or fewer
/// than two items) everything runs inline on the calling thread as domain 0
/// with no pool — matching parallel_map's inline convention, so the serial
/// path consumes no "pool.task" fault ordinals. The pooled path consumes
/// one ordinal per item at submission, in ascending item order on the
/// calling thread (contiguous shards make domain-major submission ascend
/// globally), so fault plans poison the same item for any jobs/numa
/// combination. Exceptions: every task is awaited, then the failure with
/// the lowest item index is rethrown (setup failures outrank item ones).
template <typename Setup, typename Fn>
void domain_for_each(const Topology& topo, std::size_t jobs, std::size_t num_items,
                     Setup&& setup, Fn&& fn) {
  if (jobs <= 1 || num_items <= 1) {
    if (num_items == 0) return;
    setup(0);
    for (std::size_t i = 0; i < num_items; ++i) fn(i, 0);
    return;
  }
  const std::size_t domains =
      std::max<std::size_t>(1, std::min({topo.num_domains(), jobs, num_items}));
  const auto item_shards = partition_shards(num_items, domains);
  const auto job_shards = partition_shards(jobs, domains);
  std::vector<std::unique_ptr<ThreadPool>> pools;
  pools.reserve(domains);
  for (std::size_t d = 0; d < domains; ++d) {
    const std::size_t shard_items = item_shards[d].second - item_shards[d].first;
    const std::size_t threads = std::max<std::size_t>(
        1, std::min(job_shards[d].second - job_shards[d].first, shard_items));
    // Pinning only matters (and only happens) when there is more than one
    // domain; the single-domain pool is byte- and schedule-equivalent to
    // the pre-topology code path.
    pools.push_back(domains > 1 ? std::make_unique<ThreadPool>(threads, topo.domains[d].cpus)
                                : std::make_unique<ThreadPool>(threads));
  }

  {
    // Setup barrier: no item may run before its domain's context exists,
    // and the context must be built on a pinned worker (first touch).
    std::vector<std::future<void>> ready;
    ready.reserve(domains);
    for (std::size_t d = 0; d < domains; ++d) {
      // setup's contract confines it to domain d's own slot, so the
      // by-reference capture is race-free; all captures outlive the pools.
      // subsidy-lint: allow(pool-capture-audit) — see the line above.
      ready.push_back(pools[d]->submit([&setup, d]() { setup(d); }));
    }
    std::exception_ptr setup_failure;
    for (std::future<void>& f : ready) {
      try {
        f.get();
      } catch (...) {
        if (!setup_failure) setup_failure = std::current_exception();
      }
    }
    if (setup_failure) std::rethrow_exception(setup_failure);
  }

  std::vector<std::future<void>> pending;
  pending.reserve(num_items);
  for (std::size_t d = 0; d < domains; ++d) {
    for (std::size_t i = item_shards[d].first; i < item_shards[d].second; ++i) {
      // Fault site "pool.task": consumed here on the submitting thread in
      // ascending item order (see the header comment).
      const bool inject = SUBSIDY_FAULT_FIRE(pool_task);
      // fn's contract (above) confines each task to item i; captures
      // outlive the pools.
      // subsidy-lint: allow(pool-capture-audit) — see the two lines above.
      pending.push_back(pools[d]->submit([&fn, i, d, inject]() {
        if (inject) throw std::runtime_error("injected fault: pool.task");
        fn(i, d);
      }));
    }
  }
  std::exception_ptr first_failure;
  for (std::future<void>& f : pending) {  // pending is in ascending item order
    try {
      f.get();
    } catch (...) {
      if (!first_failure) first_failure = std::current_exception();
    }
  }
  if (first_failure) std::rethrow_exception(first_failure);
}

}  // namespace subsidy::runtime
