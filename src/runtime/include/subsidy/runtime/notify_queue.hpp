// NotifyQueue: a small closable MPMC queue with drain-all semantics — the
// wakeup primitive under the serving layer's batching scheduler. Producers
// push items one at a time; a consumer calls wait_drain(), which blocks
// until at least one item is queued (or the queue is closed) and then takes
// the ENTIRE backlog in one swap. That drain-the-backlog shape is what turns
// concurrent arrivals into coalesced batches: every request that lands while
// the solver is busy with the previous batch rides the next drain together.
//
// Determinism note: the queue imposes no ordering beyond per-producer FIFO
// (pushes from one thread drain in push order; interleaving across producers
// is scheduling-dependent). Layers that need reproducible output must key
// their results to request identity, not arrival order — the server engine
// sorts each drained batch by request ordinal before dispatch.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

namespace subsidy::runtime {

/// Closable MPMC queue; wait_drain() hands the consumer the whole backlog.
template <typename T>
class NotifyQueue {
 public:
  NotifyQueue() = default;
  NotifyQueue(const NotifyQueue&) = delete;
  NotifyQueue& operator=(const NotifyQueue&) = delete;

  /// Enqueues one item and wakes a waiting consumer. Returns false (and
  /// drops the item) when the queue is already closed.
  bool push(T item) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    wake_.notify_one();
    return true;
  }

  /// Blocks until the backlog is non-empty or the queue is closed, then
  /// moves the entire backlog into `out` (cleared first). Returns true when
  /// items were drained; false when the queue is closed AND empty — the
  /// consumer's termination signal.
  bool wait_drain(std::vector<T>& out) {
    out.clear();
    std::unique_lock<std::mutex> lock(mutex_);
    wake_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;  // closed_ must hold here.
    out.swap(items_);
    return true;
  }

  /// Non-blocking drain; true when anything was taken.
  bool try_drain(std::vector<T>& out) {
    out.clear();
    const std::lock_guard<std::mutex> lock(mutex_);
    if (items_.empty()) return false;
    out.swap(items_);
    return true;
  }

  /// Closes the queue: further pushes are refused, and once the backlog is
  /// drained wait_drain() returns false. Idempotent.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    wake_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::vector<T> items_;
  bool closed_ = false;
};

}  // namespace subsidy::runtime
