// Parallel equilibrium sweeps over (price, policy-cap) grids.
//
// The figure-reproduction sweeps of the paper solve a Nash equilibrium at
// every node of a price x policy-cap grid, warm-starting each solve from the
// previous price point. That continuation structure is what makes the serial
// sweep fast — and it is preserved here: the grid is partitioned into
// *contiguous warm-start chains* (each chain starts cold and continues
// warm-started within itself), and the chains — which are mutually
// independent — are evaluated across a thread pool.
//
// Determinism: the chain partition depends only on the grid and on
// `SweepOptions::chain_length`, never on the job count, and every chain is a
// pure function of its inputs. Running with jobs=1 and jobs=N therefore
// produces bit-identical rows.
//
// Batch planes: chained sweeps hand whole planes to the compiled kernel.
// The unsubsidized fixed points of every chained node are solved as one
// node-major batch of warm-start hints, and each q > 0 chain then advances
// as one lockstep core::NashBatchSolver batch — candidate rank r of every
// node's best-response line search lands in one shared plane through
// UtilizationSolver::solve_many. Zero-cap groups, whose game is degenerate,
// skip Nash entirely: each of their chains is one solve_many plane. With
// the scalar exp backend forced (SUBSIDY_FORCE_SCALAR) chained sweeps run
// the pre-engine warm-start continuations bit-for-bit (chain-head hints
// only).
#pragma once

#include <cstddef>
#include <vector>

#include "subsidy/core/evaluator.hpp"
#include "subsidy/core/game.hpp"
#include "subsidy/core/nash.hpp"
#include "subsidy/econ/market.hpp"
#include "subsidy/runtime/chain_partition.hpp"
#include "subsidy/runtime/topology.hpp"

namespace subsidy::runtime {

/// Tuning knobs for a parallel sweep.
struct SweepOptions {
  /// Worker threads; 1 runs inline on the calling thread.
  std::size_t jobs = 1;

  /// Number of consecutive price points per warm-start chain. 0 means one
  /// chain per policy level — exactly the legacy serial semantics, where the
  /// whole price axis is one continuation. Smaller values expose more
  /// parallelism at the cost of one cold solve per chain. Part of the sweep
  /// *semantics* (it changes which solves are warm-started), so it is chosen
  /// independently of `jobs` to keep results jobs-invariant.
  std::size_t chain_length = 0;

  /// Memory-domain sharding (`--numa` / SUBSIDY_NUMA). With more than one
  /// effective domain, contiguous chain shards run on domain-pinned pools
  /// against first-touch kernel replicas. Never a results knob: rows are
  /// bit-identical for every setting (see topology.hpp).
  NumaConfig numa = default_numa_config();
};

/// One solved grid node.
struct SweepRow {
  std::size_t policy_index = 0;  ///< Index into the policy_caps argument.
  std::size_t price_index = 0;   ///< Index into the prices argument.
  double price = 0.0;
  double policy_cap = 0.0;
  core::NashResult result;
};

/// Evaluates Nash equilibria over a (policy cap, price) grid, chain-parallel.
class ParallelSweepRunner {
 public:
  explicit ParallelSweepRunner(econ::Market market, SweepOptions options = {});

  /// Solves every (cap, price) node. Rows are returned ordered by
  /// (policy_index, price_index) regardless of execution order.
  [[nodiscard]] std::vector<SweepRow> run(const std::vector<double>& policy_caps,
                                          const std::vector<double>& prices) const;

  /// Single-cap convenience overload.
  [[nodiscard]] std::vector<SweepRow> run_prices(double policy_cap,
                                                 const std::vector<double>& prices) const;

  [[nodiscard]] const SweepOptions& options() const noexcept { return options_; }
  [[nodiscard]] const econ::Market& market() const noexcept { return market_; }

 private:
  /// Runs one zero-cap chain as a single batched plane (see header comment)
  /// through `evaluator` — the shared one or a domain-local replica.
  void solve_chain_plane(const core::ModelEvaluator& evaluator, const Chain& chain,
                         double cap, const std::vector<double>& prices,
                         std::vector<SweepRow>& rows) const;

  econ::Market market_;
  SweepOptions options_;
  /// Compiled once per runner; const access is thread-safe, so concurrent
  /// chains share it for plane solves.
  core::ModelEvaluator evaluator_;
};

}  // namespace subsidy::runtime
