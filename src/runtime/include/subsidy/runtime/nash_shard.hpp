// Topology-aware fan-out for batched Nash planes: the contiguous-chunk
// sharding the serving engine has always used (chunk boundaries are the
// pure function nodes*k/chunks of (node count, jobs) — never of topology or
// timing), executed per memory domain with a domain-local ModelEvaluator
// replica when the effective topology has more than one domain. Lane bytes
// are chunking- and topology-invariant: every chunk is an independent
// lockstep batch (the PR 5 composition-invariance contract) and a replica
// compiled from the same market is value-identical to the original — the
// domain argument only moves the planes closer to the cores that read them.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "subsidy/core/nash_batch.hpp"
#include "subsidy/runtime/topology.hpp"

namespace subsidy::runtime {

/// solve_nash_many over `jobs` contiguous chunks, domain-sharded per
/// `numa`. Element k bit-equals solve_nash_many(evaluator, nodes)[k] for
/// any jobs/numa combination. Per-chunk stats are summed in chunk order
/// into `stats` when given.
[[nodiscard]] std::vector<core::NashResult> solve_nash_many_sharded(
    const core::ModelEvaluator& evaluator, std::span<const core::NashBatchNode> nodes,
    std::size_t jobs, const NumaConfig& numa,
    const core::BestResponseOptions& br_options = {},
    const core::ExtragradientOptions& eg_options = {},
    core::NashBatchStats* stats = nullptr);

}  // namespace subsidy::runtime
