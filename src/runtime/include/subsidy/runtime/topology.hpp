// Machine-topology discovery for the sharded fan-out layers: which memory
// domains (NUMA nodes) the process may run on, and which CPUs belong to
// each, so the sweep/batch runners can pin contiguous warm-start shards per
// domain and build first-touch-local kernel replicas.
//
// Determinism contract: topology NEVER influences results — only where work
// executes and where its planes are allocated. Shard assignment downstream
// (domain_fanout.hpp) is a pure function of (item count, jobs, domain
// count); the domain count itself comes from this header's NumaConfig
// resolution, which depends only on the CLI/env override and the (static)
// machine layout, never on runtime timing. Rows are therefore bit-identical
// for any --numa setting, any --jobs, and on non-NUMA boxes; the golden and
// scalar-twin suites enforce it.
//
// Resolution order: `--numa off|auto|N` on the CLI wins; otherwise the
// SUBSIDY_NUMA environment variable (same grammar) is the escape hatch —
// `SUBSIDY_NUMA=2` fakes two domains on a single-socket box, which is how
// CI exercises the multi-domain paths; unset means `auto` (sysfs
// discovery, flat single domain when /sys/devices/system/node is absent).
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace subsidy::runtime {

/// One memory domain (NUMA node) and the CPUs of the process affinity mask
/// that live on it. Forced (faked) domains on a box with fewer CPUs than
/// domains all share the full CPU list — pinning degenerates to a no-op and
/// only the sharding structure is exercised.
struct MemoryDomain {
  int id = 0;             ///< sysfs node id (synthetic index when forced/flat).
  std::vector<int> cpus;  ///< Usable CPUs, ascending; never empty.
};

struct Topology {
  std::vector<MemoryDomain> domains;
  [[nodiscard]] std::size_t num_domains() const noexcept { return domains.size(); }
};

enum class NumaMode {
  off,          ///< One flat domain regardless of the machine.
  auto_detect,  ///< Discover via sysfs; flat fallback.
  forced,       ///< Exactly `forced_domains` synthetic domains.
};

struct NumaConfig {
  NumaMode mode = NumaMode::auto_detect;
  std::size_t forced_domains = 0;  ///< Meaningful only when mode == forced.
};

/// Parses the shared `--numa` / SUBSIDY_NUMA grammar: "off", "auto", or a
/// positive domain count. Throws std::invalid_argument on anything else.
[[nodiscard]] NumaConfig parse_numa_setting(const std::string& text);

/// The process default: SUBSIDY_NUMA when set (parsed with the grammar
/// above; an unparsable value falls back to auto rather than aborting a
/// run), otherwise auto.
[[nodiscard]] NumaConfig default_numa_config();

/// CPUs the process may run on, ascending — the sched_getaffinity mask on
/// Linux (so taskset/cgroup cpusets are respected), synthesized 0..N-1 from
/// hardware_concurrency elsewhere. Never empty.
[[nodiscard]] std::vector<int> available_cpus();

/// available_cpus().size() — the honest worker-count ceiling resolve_jobs
/// uses for `--jobs 0`.
[[nodiscard]] std::size_t available_cpu_count();

/// Parses a sysfs cpulist string ("0-3,8,10-11") into an ascending CPU
/// vector. Malformed cells are skipped; exposed for the topology tests.
[[nodiscard]] std::vector<int> parse_cpu_list(const std::string& text);

/// Reads the NUMA layout from `node_dir` (node<id>/cpulist entries),
/// intersects each node with the affinity mask and drops nodes the process
/// cannot run on. Returns a flat single domain when the directory is
/// missing, unreadable, or leaves no usable node.
[[nodiscard]] Topology discover_topology(const std::string& node_dir);

/// discover_topology on the real /sys/devices/system/node, cached after the
/// first call (the machine layout is static for the process lifetime).
[[nodiscard]] Topology discover_topology();

/// Resolves a NumaConfig into the topology the fan-out layers use:
/// off -> one flat domain; auto -> discovery; forced N -> N synthetic
/// domains splitting the affinity CPUs contiguously (every domain gets the
/// full list when there are fewer CPUs than domains, so fakes work on any
/// box). Always at least one domain, and every domain has at least one CPU.
[[nodiscard]] Topology effective_topology(const NumaConfig& config);

/// Best-effort: restricts the calling thread to `cpus` (sched_setaffinity
/// on Linux, no-op elsewhere/on failure). Purely a locality hint — never
/// correctness-bearing, results are identical pinned or not.
void pin_current_thread(const std::vector<int>& cpus) noexcept;

/// Splits [0, items) into `shards` contiguous [begin, end) ranges with the
/// balanced items*k/shards boundaries — the deterministic partition every
/// sharding layer shares. A pure function of its two arguments; shards
/// beyond `items` come back empty (callers clamp the shard count first).
[[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> partition_shards(
    std::size_t items, std::size_t shards);

}  // namespace subsidy::runtime
