// The warm-start chain partition shared by every parallel sweep in the
// library (ParallelSweepRunner, IspPriceOptimizer's grid phase).
//
// A sweep axis is split into *contiguous chains*: each chain starts cold and
// continues warm-started within itself, and the chains — which are mutually
// independent — can be evaluated across a thread pool. The partition depends
// only on the grid shape and the chain length, never on the job count, so
// results are bit-identical for any number of workers. Header-only and free
// of model dependencies so low-level libraries can share it.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

namespace subsidy::runtime {

/// A contiguous run of sweep indices solved as one warm-start continuation.
struct Chain {
  std::size_t group = 0;  ///< Outer index (e.g. the policy level).
  std::size_t begin = 0;  ///< First inner index (inclusive).
  std::size_t end = 0;    ///< Past-the-end inner index.
};

/// Splits a (num_groups x num_items) grid into chains of at most
/// `chain_length` consecutive inner items. 0 means one chain per group —
/// exactly the legacy serial semantics, where the whole inner axis is one
/// continuation. Smaller values expose more parallelism at the cost of one
/// cold solve per chain. Part of the sweep *semantics* (it changes which
/// solves are warm-started), so callers choose it independently of the job
/// count to keep results jobs-invariant.
[[nodiscard]] inline std::vector<Chain> partition_chains(std::size_t num_groups,
                                                         std::size_t num_items,
                                                         std::size_t chain_length) {
  const std::size_t length =
      chain_length == 0 ? std::max<std::size_t>(1, num_items) : chain_length;
  std::vector<Chain> chains;
  chains.reserve(num_groups * ((num_items + length - 1) / length));
  for (std::size_t g = 0; g < num_groups; ++g) {
    for (std::size_t begin = 0; begin < num_items; begin += length) {
      chains.push_back({g, begin, std::min(begin + length, num_items)});
    }
  }
  return chains;
}

}  // namespace subsidy::runtime
