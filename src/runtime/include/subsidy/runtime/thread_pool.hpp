// A small fixed-size worker pool used by the parallel sweep runner and any
// future batch/sharding layers. Tasks are arbitrary callables; submit()
// returns a std::future carrying the result (or the exception the task
// threw). The pool joins all workers on destruction after draining the queue.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "subsidy/numerics/fault_injection.hpp"

namespace subsidy::runtime {

/// Resolves a user-facing `--jobs N` request into a worker count: values
/// >= 1 are taken verbatim, 0 (or negative) means "use the hardware" — the
/// process affinity mask (topology.hpp's available_cpu_count), NOT raw
/// hardware_concurrency, so taskset/cgroup-limited runs don't oversubscribe.
[[nodiscard]] std::size_t resolve_jobs(int requested);

/// Fixed-size FIFO thread pool.
class ThreadPool {
 public:
  /// Spawns `threads` workers (at least one).
  explicit ThreadPool(std::size_t threads);

  /// Same, with every worker pinned (best-effort) to `pin_cpus` before it
  /// takes work — the domain-local pool the topology fan-out uses. Pinning
  /// is purely a locality hint; results never depend on it.
  ThreadPool(std::size_t threads, std::vector<int> pin_cpus);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a callable; the returned future yields its result or rethrows
  /// the exception it raised.
  template <typename F>
  [[nodiscard]] std::future<std::invoke_result_t<F>> submit(F&& task) {
    using R = std::invoke_result_t<F>;
    auto packaged = std::make_shared<std::packaged_task<R()>>(std::forward<F>(task));
    std::future<R> result = packaged->get_future();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace([packaged]() { (*packaged)(); });
    }
    wake_.notify_one();
    return result;
  }

 private:
  void worker_loop();

  std::vector<int> pin_cpus_;  ///< Empty = unpinned workers.
  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
};

/// Applies `fn` to every item, preserving input order in the result. With
/// jobs <= 1 (or fewer than two items) it runs inline on the calling thread;
/// otherwise items are fanned out over a pool. `fn` must be safe to call
/// concurrently on distinct items. Exceptions propagate to the caller with
/// deterministic selection: every task is waited for first, then the failure
/// with the lowest item index is rethrown — never whichever happened to
/// finish (or be polled) first, and never while siblings still run.
template <typename T, typename F>
auto parallel_map(const std::vector<T>& items, std::size_t jobs, F&& fn)
    -> std::vector<std::invoke_result_t<F, const T&>> {
  using R = std::invoke_result_t<F, const T&>;
  std::vector<R> results;
  results.reserve(items.size());
  if (jobs <= 1 || items.size() <= 1) {
    for (const T& item : items) results.push_back(fn(item));
    return results;
  }
  ThreadPool pool(std::min(jobs, items.size()));
  std::vector<std::future<R>> pending;
  pending.reserve(items.size());
  for (const T& item : items) {
    // Fault site "pool.task": the ordinal is consumed here on the submitting
    // thread (deterministic submission order) and carried into the task by
    // value, so a plan poisons the same item at any jobs count.
    const bool inject = SUBSIDY_FAULT_FIRE(pool_task);
    // fn's contract (above) requires it be safe to invoke concurrently on
    // distinct items; `items` outlives the pool and is never written here.
    // subsidy-lint: allow(pool-capture-audit) — see the two lines above.
    pending.push_back(pool.submit([&fn, &item, inject]() {
      if (inject) throw std::runtime_error("injected fault: pool.task");
      return fn(item);
    }));
  }
  std::exception_ptr first_failure;
  for (std::future<R>& f : pending) {
    try {
      results.push_back(f.get());
    } catch (...) {
      if (!first_failure) first_failure = std::current_exception();
    }
  }
  if (first_failure) std::rethrow_exception(first_failure);
  return results;
}

/// Mutating analogue of parallel_map: invokes `fn(item)` on every element of
/// `items`, fanning out over a pool when jobs > 1. Each invocation may
/// mutate its own item (the agent simulation's per-group state lives inside
/// the items), but items must be pairwise independent — `fn` is called
/// concurrently on distinct elements and must not touch any other element.
/// Exception semantics match parallel_map: all tasks are waited for, then
/// the failure with the lowest item index is rethrown.
template <typename T, typename F>
void parallel_for_each(std::vector<T>& items, std::size_t jobs, F&& fn) {
  if (jobs <= 1 || items.size() <= 1) {
    for (T& item : items) fn(item);
    return;
  }
  ThreadPool pool(std::min(jobs, items.size()));
  std::vector<std::future<void>> pending;
  pending.reserve(items.size());
  for (T& item : items) {
    // Same fault site and submission-order ordinal discipline as
    // parallel_map: "pool.task" is consumed here on the submitting thread.
    const bool inject = SUBSIDY_FAULT_FIRE(pool_task);
    // fn's contract (above) confines each task to its own element, so the
    // by-reference captures are race-free; `items` outlives the pool.
    // subsidy-lint: allow(pool-capture-audit) — see the two lines above.
    pending.push_back(pool.submit([&fn, &item, inject]() {
      if (inject) throw std::runtime_error("injected fault: pool.task");
      fn(item);
    }));
  }
  std::exception_ptr first_failure;
  for (std::future<void>& f : pending) {
    try {
      f.get();
    } catch (...) {
      if (!first_failure) first_failure = std::current_exception();
    }
  }
  if (first_failure) std::rethrow_exception(first_failure);
}

}  // namespace subsidy::runtime
