#include "subsidy/runtime/parallel_sweep.hpp"

#include <algorithm>
#include <future>
#include <utility>

#include "subsidy/runtime/thread_pool.hpp"

namespace subsidy::runtime {

namespace {

/// A contiguous run of price indices solved as one warm-start continuation.
struct Chain {
  std::size_t policy_index = 0;
  std::size_t begin = 0;  ///< First price index (inclusive).
  std::size_t end = 0;    ///< Past-the-end price index.
};

std::vector<Chain> partition(std::size_t num_caps, std::size_t num_prices,
                             std::size_t chain_length) {
  const std::size_t length =
      chain_length == 0 ? std::max<std::size_t>(1, num_prices) : chain_length;
  std::vector<Chain> chains;
  for (std::size_t c = 0; c < num_caps; ++c) {
    for (std::size_t begin = 0; begin < num_prices; begin += length) {
      chains.push_back({c, begin, std::min(begin + length, num_prices)});
    }
  }
  return chains;
}

}  // namespace

ParallelSweepRunner::ParallelSweepRunner(econ::Market market, SweepOptions options)
    : market_(std::move(market)), options_(options) {}

std::vector<SweepRow> ParallelSweepRunner::run(const std::vector<double>& policy_caps,
                                               const std::vector<double>& prices) const {
  const std::size_t num_prices = prices.size();
  std::vector<SweepRow> rows(policy_caps.size() * num_prices);
  const std::vector<Chain> chains =
      partition(policy_caps.size(), num_prices, options_.chain_length);

  // Each chain writes a disjoint slice of `rows`, so no synchronization is
  // needed beyond joining the futures.
  const auto solve_chain = [&](const Chain& chain) {
    const double cap = policy_caps[chain.policy_index];
    std::vector<double> warm;
    for (std::size_t k = chain.begin; k < chain.end; ++k) {
      const core::SubsidizationGame game(market_, prices[k], cap);
      core::NashResult nash = core::solve_nash(game, warm);
      warm = nash.subsidies;
      rows[chain.policy_index * num_prices + k] =
          SweepRow{chain.policy_index, k, prices[k], cap, std::move(nash)};
    }
  };

  if (options_.jobs <= 1 || chains.size() <= 1) {
    for (const Chain& chain : chains) solve_chain(chain);
    return rows;
  }

  ThreadPool pool(std::min(options_.jobs, chains.size()));
  std::vector<std::future<void>> pending;
  pending.reserve(chains.size());
  for (const Chain& chain : chains) {
    pending.push_back(pool.submit([&solve_chain, chain]() { solve_chain(chain); }));
  }
  for (std::future<void>& f : pending) f.get();  // rethrows chain failures
  return rows;
}

std::vector<SweepRow> ParallelSweepRunner::run_prices(double policy_cap,
                                                      const std::vector<double>& prices) const {
  return run({policy_cap}, prices);
}

}  // namespace subsidy::runtime
