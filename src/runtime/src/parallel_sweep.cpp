#include "subsidy/runtime/parallel_sweep.hpp"

#include <memory>
#include <utility>

#include "subsidy/core/evaluator.hpp"
#include "subsidy/core/nash_batch.hpp"
#include "subsidy/numerics/simd.hpp"
#include "subsidy/runtime/chain_partition.hpp"
#include "subsidy/runtime/domain_fanout.hpp"

namespace subsidy::runtime {

ParallelSweepRunner::ParallelSweepRunner(econ::Market market, SweepOptions options)
    : market_(std::move(market)), options_(options), evaluator_(market_) {}

std::vector<SweepRow> ParallelSweepRunner::run(const std::vector<double>& policy_caps,
                                               const std::vector<double>& prices) const {
  const std::size_t num_prices = prices.size();
  const std::size_t players = market_.num_providers();
  std::vector<SweepRow> rows(policy_caps.size() * num_prices);
  const std::vector<Chain> chains =
      partition_chains(policy_caps.size(), num_prices, options_.chain_length);

  // Chained sweeps start every node cold; batch-solve the unsubsidized
  // fixed points of the warm-start nodes as one node-major plane and pass
  // them down as hints — every node of a lockstep chain, or just each
  // chain head on the forced-scalar reference path (results shift only
  // within solver tolerance, so chain_length == 0 — the legacy serial
  // semantics — skips this). Zero-cap chains are excluded: they run as pure
  // planes below and would discard the hint. The plane depends only on the
  // partition and the cap values, never on `jobs`.
  const bool lockstep = options_.chain_length != 0 && !num::simd::force_scalar();
  std::vector<double> node_hints;
  std::vector<double> head_hints(chains.size(), -1.0);
  if (options_.chain_length != 0 && !chains.empty() && num_prices > 0) {
    std::vector<std::size_t> hinted;  // chain (reference) or row (lockstep) ids
    if (lockstep) {
      node_hints.assign(rows.size(), -1.0);
      for (const Chain& chain : chains) {
        if (policy_caps[chain.group] <= 0.0) continue;
        for (std::size_t k = chain.begin; k < chain.end; ++k) {
          hinted.push_back(chain.group * num_prices + k);
        }
      }
    } else {
      for (std::size_t c = 0; c < chains.size(); ++c) {
        if (policy_caps[chains[c].group] > 0.0) hinted.push_back(c);
      }
    }
    if (!hinted.empty()) {
      const std::vector<double> zeros(players, 0.0);
      std::vector<double> m(hinted.size() * players);
      std::vector<double> phis(hinted.size());
      for (std::size_t j = 0; j < hinted.size(); ++j) {
        const std::span<double> row(m.data() + j * players, players);
        const std::size_t price_index =
            lockstep ? hinted[j] % num_prices : chains[hinted[j]].begin;
        evaluator_.kernel().populations(prices[price_index], zeros, row);
      }
      evaluator_.solver().solve_many(m, {}, phis);
      for (std::size_t j = 0; j < hinted.size(); ++j) {
        (lockstep ? node_hints[hinted[j]] : head_hints[hinted[j]]) = phis[j];
      }
    }
  }

  // Each chain writes a disjoint slice of `rows`, so no synchronization is
  // needed beyond joining the futures. `ev` is the evaluator the chain's
  // planes go through — the shared one, or a domain-local replica on
  // multi-domain topologies (value-identical, so rows never depend on it).
  const auto solve_chain = [&](std::size_t chain_index, const core::ModelEvaluator& ev) {
    const Chain& chain = chains[chain_index];
    const double cap = policy_caps[chain.group];
    if (cap <= 0.0) {
      solve_chain_plane(ev, chain, cap, prices, rows);
      return;
    }
    if (lockstep) {
      // The chain advances as one lockstep batch: candidate rank r of every
      // node's line search lands in one shared plane. Nodes start cold with
      // their plane-solved hints instead of chaining warm starts serially.
      std::vector<core::NashBatchNode> nodes(chain.end - chain.begin);
      for (std::size_t k = chain.begin; k < chain.end; ++k) {
        core::NashBatchNode& node = nodes[k - chain.begin];
        node.price = prices[k];
        node.policy_cap = cap;
        node.phi_hint = node_hints[chain.group * num_prices + k];
      }
      std::vector<core::NashResult> results = core::solve_nash_many(ev, nodes);
      for (std::size_t k = chain.begin; k < chain.end; ++k) {
        rows[chain.group * num_prices + k] =
            SweepRow{chain.group, k, prices[k], cap,
                     std::move(results[k - chain.begin])};
      }
      return;
    }
    std::vector<double> warm;
    double phi_hint = head_hints[chain_index];
    for (std::size_t k = chain.begin; k < chain.end; ++k) {
      const core::SubsidizationGame game(market_, prices[k], cap);
      core::NashResult nash = core::solve_nash(game, warm, {}, {}, phi_hint);
      phi_hint = -1.0;  // only the chain's cold head uses the plane hint
      warm = nash.subsidies;
      rows[chain.group * num_prices + k] =
          SweepRow{chain.group, k, prices[k], cap, std::move(nash)};
    }
  };

  if (options_.jobs <= 1 || chains.size() <= 1) {
    for (std::size_t c = 0; c < chains.size(); ++c) solve_chain(c, evaluator_);
    return rows;
  }

  // Topology-sharded fan-out: contiguous chain shards per memory domain,
  // each running on a domain-pinned pool against a first-touch kernel
  // replica (flat topologies keep one unpinned pool sharing `evaluator_`,
  // exactly the pre-topology schedule). The shard map is a pure function of
  // (chain count, jobs, domain count) — never timing — so rows, fault
  // ordinals, and the lowest-chain rethrow are bit-identical for any
  // --numa/--jobs combination.
  const Topology topo = effective_topology(options_.numa);
  std::vector<std::unique_ptr<const core::ModelEvaluator>> replicas(topo.num_domains());
  const bool replicate = topo.num_domains() > 1;
  domain_for_each(
      topo, options_.jobs, chains.size(),
      // Setup writes only its own domain's replica slot; the fan-out's
      // barrier sequences it before every reader.
      // subsidy-lint: allow(pool-capture-audit) — see the two lines above.
      [&](std::size_t d) {
        if (replicate) {
          replicas[d] = std::make_unique<const core::ModelEvaluator>(market_);
        }
      },
      // Each chain writes a disjoint `rows` slice (solve_chain's contract);
      // the replicas are read-only once the setup barrier passes.
      // subsidy-lint: allow(pool-capture-audit) — see the two lines above.
      [&](std::size_t c, std::size_t d) {
        solve_chain(c, replicas[d] ? *replicas[d] : evaluator_);
      });
  return rows;
}

void ParallelSweepRunner::solve_chain_plane(const core::ModelEvaluator& evaluator,
                                            const Chain& chain, double cap,
                                            const std::vector<double>& prices,
                                            std::vector<SweepRow>& rows) const {
  // A zero policy cap pins every subsidy at zero, so the whole chain is one
  // unsubsidized price plane: hand it to the batched kernel solver in one
  // call and synthesize the rows through core::degenerate_nash_result.
  const std::size_t num_prices = prices.size();
  const std::size_t players = market_.num_providers();
  const std::vector<double> chain_prices(prices.begin() + static_cast<std::ptrdiff_t>(chain.begin),
                                         prices.begin() + static_cast<std::ptrdiff_t>(chain.end));
  std::vector<core::SystemState> states = evaluator.evaluate_unsubsidized_many(chain_prices);
  for (std::size_t k = chain.begin; k < chain.end; ++k) {
    rows[chain.group * num_prices + k] =
        SweepRow{chain.group, k, prices[k], cap,
                 core::degenerate_nash_result(players, std::move(states[k - chain.begin]))};
  }
}

std::vector<SweepRow> ParallelSweepRunner::run_prices(double policy_cap,
                                                      const std::vector<double>& prices) const {
  return run({policy_cap}, prices);
}

}  // namespace subsidy::runtime
