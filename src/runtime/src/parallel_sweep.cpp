#include "subsidy/runtime/parallel_sweep.hpp"

#include <algorithm>
#include <future>
#include <utility>

#include "subsidy/runtime/chain_partition.hpp"
#include "subsidy/runtime/thread_pool.hpp"

namespace subsidy::runtime {

ParallelSweepRunner::ParallelSweepRunner(econ::Market market, SweepOptions options)
    : market_(std::move(market)), options_(options) {}

std::vector<SweepRow> ParallelSweepRunner::run(const std::vector<double>& policy_caps,
                                               const std::vector<double>& prices) const {
  const std::size_t num_prices = prices.size();
  std::vector<SweepRow> rows(policy_caps.size() * num_prices);
  const std::vector<Chain> chains =
      partition_chains(policy_caps.size(), num_prices, options_.chain_length);

  // Each chain writes a disjoint slice of `rows`, so no synchronization is
  // needed beyond joining the futures.
  const auto solve_chain = [&](const Chain& chain) {
    const double cap = policy_caps[chain.group];
    std::vector<double> warm;
    for (std::size_t k = chain.begin; k < chain.end; ++k) {
      const core::SubsidizationGame game(market_, prices[k], cap);
      core::NashResult nash = core::solve_nash(game, warm);
      warm = nash.subsidies;
      rows[chain.group * num_prices + k] =
          SweepRow{chain.group, k, prices[k], cap, std::move(nash)};
    }
  };

  if (options_.jobs <= 1 || chains.size() <= 1) {
    for (const Chain& chain : chains) solve_chain(chain);
    return rows;
  }

  ThreadPool pool(std::min(options_.jobs, chains.size()));
  std::vector<std::future<void>> pending;
  pending.reserve(chains.size());
  for (const Chain& chain : chains) {
    pending.push_back(pool.submit([&solve_chain, chain]() { solve_chain(chain); }));
  }
  for (std::future<void>& f : pending) f.get();  // rethrows chain failures
  return rows;
}

std::vector<SweepRow> ParallelSweepRunner::run_prices(double policy_cap,
                                                      const std::vector<double>& prices) const {
  return run({policy_cap}, prices);
}

}  // namespace subsidy::runtime
