#include "subsidy/runtime/topology.hpp"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>

#if defined(__linux__)
#include <sched.h>
#endif

namespace subsidy::runtime {

namespace {

/// Parses the decimal digits of `text` starting at `pos`; advances `pos`.
/// Returns -1 when no digit is present.
int parse_int_at(const std::string& text, std::size_t& pos) {
  if (pos >= text.size() || text[pos] < '0' || text[pos] > '9') return -1;
  int value = 0;
  while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
    value = value * 10 + (text[pos] - '0');
    ++pos;
  }
  return value;
}

}  // namespace

NumaConfig parse_numa_setting(const std::string& text) {
  if (text == "off") return {NumaMode::off, 0};
  if (text == "auto") return {NumaMode::auto_detect, 0};
  std::size_t pos = 0;
  const int count = parse_int_at(text, pos);
  if (count >= 1 && pos == text.size()) {
    return {NumaMode::forced, static_cast<std::size_t>(count)};
  }
  throw std::invalid_argument("numa setting expects off|auto|N (N >= 1), got '" + text +
                              "'");
}

NumaConfig default_numa_config() {
  const char* env = std::getenv("SUBSIDY_NUMA");
  if (env == nullptr || env[0] == '\0') return {};
  try {
    return parse_numa_setting(env);
  } catch (const std::invalid_argument&) {
    return {};  // Unparsable escape hatch must not abort a run.
  }
}

std::vector<int> available_cpus() {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0 && CPU_COUNT(&set) > 0) {
    std::vector<int> cpus;
    cpus.reserve(static_cast<std::size_t>(CPU_COUNT(&set)));
    for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
      if (CPU_ISSET(cpu, &set)) cpus.push_back(cpu);
    }
    return cpus;
  }
#endif
  const std::size_t count =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  std::vector<int> cpus(count);
  for (std::size_t i = 0; i < count; ++i) cpus[i] = static_cast<int>(i);
  return cpus;
}

std::size_t available_cpu_count() { return available_cpus().size(); }

std::vector<int> parse_cpu_list(const std::string& text) {
  std::vector<int> cpus;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const int first = parse_int_at(text, pos);
    if (first < 0) {
      ++pos;  // skip separators / malformed bytes
      continue;
    }
    int last = first;
    if (pos < text.size() && text[pos] == '-') {
      ++pos;
      const int range_end = parse_int_at(text, pos);
      if (range_end >= first) last = range_end;
    }
    for (int cpu = first; cpu <= last; ++cpu) cpus.push_back(cpu);
    if (pos < text.size() && text[pos] == ',') ++pos;
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

namespace {

Topology flat_topology() {
  Topology topo;
  topo.domains.push_back({0, available_cpus()});
  return topo;
}

}  // namespace

Topology discover_topology(const std::string& node_dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(node_dir, ec) || ec) return flat_topology();

  const std::vector<int> mask = available_cpus();
  Topology topo;
  for (const fs::directory_entry& entry : fs::directory_iterator(node_dir, ec)) {
    if (ec) break;
    const std::string name = entry.path().filename().string();
    if (name.rfind("node", 0) != 0) continue;
    std::size_t pos = 4;
    const int id = parse_int_at(name, pos);
    if (id < 0 || pos != name.size()) continue;
    std::ifstream cpulist(entry.path() / "cpulist");
    if (!cpulist) continue;
    std::string line;
    std::getline(cpulist, line);
    std::vector<int> cpus = parse_cpu_list(line);
    // Keep only CPUs the process may actually run on.
    std::vector<int> usable;
    std::set_intersection(cpus.begin(), cpus.end(), mask.begin(), mask.end(),
                          std::back_inserter(usable));
    if (usable.empty()) continue;
    topo.domains.push_back({id, std::move(usable)});
  }
  if (topo.domains.empty()) return flat_topology();
  std::sort(topo.domains.begin(), topo.domains.end(),
            [](const MemoryDomain& a, const MemoryDomain& b) { return a.id < b.id; });
  return topo;
}

Topology discover_topology() {
  // The machine layout is static for the process lifetime; cache the sysfs
  // walk so per-batch callers (the serving engine) pay it once.
  static const Topology cached = discover_topology("/sys/devices/system/node");
  return cached;
}

Topology effective_topology(const NumaConfig& config) {
  switch (config.mode) {
    case NumaMode::off:
      return flat_topology();
    case NumaMode::auto_detect:
      return discover_topology();
    case NumaMode::forced:
      break;
  }
  const std::size_t domains = std::max<std::size_t>(1, config.forced_domains);
  const std::vector<int> cpus = available_cpus();
  Topology topo;
  topo.domains.reserve(domains);
  if (cpus.size() < domains) {
    // Fewer CPUs than faked domains (the CI single-socket case): every
    // domain shares the full list, pinning no-ops, sharding still splits.
    for (std::size_t d = 0; d < domains; ++d) {
      topo.domains.push_back({static_cast<int>(d), cpus});
    }
    return topo;
  }
  const auto shards = partition_shards(cpus.size(), domains);
  for (std::size_t d = 0; d < domains; ++d) {
    topo.domains.push_back(
        {static_cast<int>(d),
         std::vector<int>(cpus.begin() + static_cast<std::ptrdiff_t>(shards[d].first),
                          cpus.begin() + static_cast<std::ptrdiff_t>(shards[d].second))});
  }
  return topo;
}

void pin_current_thread(const std::vector<int>& cpus) noexcept {
#if defined(__linux__)
  if (cpus.empty()) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  for (const int cpu : cpus) {
    if (cpu >= 0 && cpu < CPU_SETSIZE) CPU_SET(cpu, &set);
  }
  // Best-effort locality hint; a failure (e.g. a CPU went offline) changes
  // nothing but scheduling freedom.
  (void)sched_setaffinity(0, sizeof(set), &set);
#else
  (void)cpus;
#endif
}

std::vector<std::pair<std::size_t, std::size_t>> partition_shards(std::size_t items,
                                                                  std::size_t shards) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  out.reserve(shards);
  for (std::size_t k = 0; k < shards; ++k) {
    out.emplace_back(items * k / shards, items * (k + 1) / shards);
  }
  return out;
}

}  // namespace subsidy::runtime
