#include "subsidy/runtime/nash_shard.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "subsidy/core/evaluator.hpp"
#include "subsidy/runtime/domain_fanout.hpp"

namespace subsidy::runtime {

namespace {

void accumulate(core::NashBatchStats& into, const core::NashBatchStats& from) {
  into.candidates += from.candidates;
  into.passes += from.passes;
  into.fallbacks += from.fallbacks;
  into.rescued_damped += from.rescued_damped;
  into.rescued_extragradient += from.rescued_extragradient;
  into.unresolved += from.unresolved;
}

}  // namespace

std::vector<core::NashResult> solve_nash_many_sharded(
    const core::ModelEvaluator& evaluator, std::span<const core::NashBatchNode> nodes,
    std::size_t jobs, const NumaConfig& numa, const core::BestResponseOptions& br_options,
    const core::ExtragradientOptions& eg_options, core::NashBatchStats* stats) {
  if (nodes.empty()) return {};
  const std::size_t chunk_count = std::min(std::max<std::size_t>(1, jobs), nodes.size());
  if (chunk_count <= 1) {
    return core::solve_nash_many(evaluator, nodes, br_options, eg_options, stats);
  }

  const Topology topo = effective_topology(numa);
  const auto chunks = partition_shards(nodes.size(), chunk_count);
  std::vector<std::vector<core::NashResult>> sharded(chunk_count);
  std::vector<core::NashBatchStats> chunk_stats(stats != nullptr ? chunk_count : 0);

  // Domain replicas: compiled from the same market on a pinned worker, so
  // the replica kernel's coefficient tables (and the thread_local plane
  // workspaces its chunks allocate) first-touch domain-local memory. Only
  // built when there is more than one domain — the flat path shares
  // `evaluator` exactly as before.
  std::vector<std::unique_ptr<const core::ModelEvaluator>> replicas(topo.num_domains());
  const bool replicate = topo.num_domains() > 1;

  domain_for_each(
      topo, chunk_count, chunk_count,
      // Setup writes only its own domain's replica slot; the fan-out's
      // barrier sequences it before every reader.
      // subsidy-lint: allow(pool-capture-audit) — see the two lines above.
      [&](std::size_t d) {
        if (replicate) {
          replicas[d] = std::make_unique<const core::ModelEvaluator>(evaluator.market());
        }
      },
      // Each chunk writes only sharded[c]/chunk_stats[c]; everything else
      // captured is read-only during the fan-out.
      // subsidy-lint: allow(pool-capture-audit) — see the two lines above.
      [&](std::size_t c, std::size_t d) {
        const core::ModelEvaluator& ev = replicas[d] ? *replicas[d] : evaluator;
        sharded[c] = core::solve_nash_many(
            ev,
            std::span<const core::NashBatchNode>(nodes.data() + chunks[c].first,
                                                 chunks[c].second - chunks[c].first),
            br_options, eg_options, stats != nullptr ? &chunk_stats[c] : nullptr);
      });

  std::vector<core::NashResult> results;
  results.reserve(nodes.size());
  for (std::vector<core::NashResult>& shard : sharded) {
    results.insert(results.end(), std::make_move_iterator(shard.begin()),
                   std::make_move_iterator(shard.end()));
  }
  if (stats != nullptr) {
    for (const core::NashBatchStats& s : chunk_stats) accumulate(*stats, s);
  }
  return results;
}

}  // namespace subsidy::runtime
