#include "subsidy/runtime/thread_pool.hpp"

#include <algorithm>

#include "subsidy/runtime/topology.hpp"

namespace subsidy::runtime {

std::size_t resolve_jobs(int requested) {
  if (requested >= 1) return static_cast<std::size_t>(requested);
  // The affinity mask, not hardware_concurrency: a taskset/cgroup-limited
  // process sizing pools to the whole machine just oversubscribes its slice.
  return std::max<std::size_t>(1, available_cpu_count());
}

ThreadPool::ThreadPool(std::size_t threads) : ThreadPool(threads, {}) {}

ThreadPool::ThreadPool(std::size_t threads, std::vector<int> pin_cpus)
    : pin_cpus_(std::move(pin_cpus)) {
  const std::size_t count = std::max<std::size_t>(1, threads);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this]() { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  // Pin before taking any work so every allocation a task first-touches
  // (plane workspaces, replica kernels) lands on the pool's memory domain.
  if (!pin_cpus_.empty()) pin_current_thread(pin_cpus_);
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this]() { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // exceptions are captured by the packaged_task wrapper
  }
}

}  // namespace subsidy::runtime
