#include "subsidy/runtime/thread_pool.hpp"

#include <algorithm>

namespace subsidy::runtime {

std::size_t resolve_jobs(int requested) {
  if (requested >= 1) return static_cast<std::size_t>(requested);
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t count = std::max<std::size_t>(1, threads);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this]() { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this]() { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // exceptions are captured by the packaged_task wrapper
  }
}

}  // namespace subsidy::runtime
