// Synthetic market-data generation.
//
// The paper (Section 6) notes that no market data exists to calibrate CP
// characteristics — "with the emerging sponsored data plan from AT&T, we
// expect this type of market data could be available". This module plays the
// role of that future dataset: it simulates an ISP's measurement pipeline
// over an observation window in which the posted price varies, producing
// noisy per-provider usage records from which the estimator recovers the
// model parameters (ground truth known => recovery is testable).
#pragma once

#include <vector>

#include "subsidy/core/evaluator.hpp"
#include "subsidy/econ/market.hpp"
#include "subsidy/numerics/rng.hpp"

namespace subsidy::market {

/// One observation period (a "billing day") for one provider.
struct UsageRecord {
  int day = 0;
  std::size_t provider = 0;
  double posted_price = 0.0;      ///< ISP price p in effect.
  double subsidy = 0.0;           ///< Provider's subsidy that day.
  double effective_price = 0.0;   ///< t = p - s, what users paid.
  double utilization = 0.0;       ///< Measured system utilization (noisy).
  double active_users = 0.0;      ///< Measured population (noisy).
  double per_user_volume = 0.0;   ///< Measured per-user throughput (noisy).
  double total_volume = 0.0;      ///< active_users * per_user_volume.
  double content_profit = 0.0;    ///< Provider's reported gross profit (noisy).
};

/// Noise / schedule configuration for the generator.
struct TraceConfig {
  int days = 120;
  double price_min = 0.2;         ///< The posted price wanders in this band...
  double price_max = 1.8;
  double measurement_noise = 0.05;  ///< Lognormal sigma on every measurement.
  bool randomize_subsidies = false; ///< Jitter subsidies (exercises t != p data).
  double subsidy_max = 0.5;         ///< Max jittered subsidy when enabled.
};

/// Generates a full observation window over the given ground-truth market:
/// each day draws a posted price, solves the utilization equilibrium and
/// emits one noisy record per provider.
[[nodiscard]] std::vector<UsageRecord> generate_trace(const econ::Market& ground_truth,
                                                      const TraceConfig& config,
                                                      num::Rng& rng);

/// Persists a trace as CSV (one row per record, stable column set).
void write_trace_csv(std::ostream& os, const std::vector<UsageRecord>& trace);
void write_trace_csv_file(const std::string& path, const std::vector<UsageRecord>& trace);

/// Loads a trace written by write_trace_csv. Throws std::runtime_error on
/// malformed input (missing columns, non-numeric cells).
[[nodiscard]] std::vector<UsageRecord> read_trace_csv(std::istream& is);
[[nodiscard]] std::vector<UsageRecord> read_trace_csv_file(const std::string& path);

}  // namespace subsidy::market
