// Calibration: recovering the exponential-family market parameters
// (alpha_i, beta_i, v_i, scales) from a usage trace by ordinary least squares
// in log space:
//
//   log m_i = log(scale_i) - alpha_i * t     (records of provider i)
//   log lambda_i = log(lambda0_i) - beta_i * phi
//   v_i ~ mean(content_profit / total_volume)
//
// This closes the paper's "no market data" gap end-to-end: trace ->
// estimation -> model -> policy analysis.
#pragma once

#include <vector>

#include "subsidy/econ/market.hpp"
#include "subsidy/market/traces.hpp"

namespace subsidy::market {

/// Per-provider estimation result with goodness-of-fit diagnostics.
struct EstimatedCp {
  std::size_t provider = 0;
  double alpha = 0.0;
  double demand_scale = 0.0;
  double demand_r_squared = 0.0;
  double beta = 0.0;
  double lambda0 = 0.0;
  double throughput_r_squared = 0.0;
  double profitability = 0.0;
  std::size_t observations = 0;
};

/// Fits every provider in a trace. Throws std::invalid_argument when a
/// provider has fewer than `min_observations` usable records.
class ParameterEstimator {
 public:
  explicit ParameterEstimator(std::size_t min_observations = 8);

  [[nodiscard]] std::vector<EstimatedCp> fit(const std::vector<UsageRecord>& trace) const;

  /// Builds a ready-to-use exponential market from estimates (Phi = theta/mu;
  /// the capacity must be supplied — it is the ISP's own known quantity).
  [[nodiscard]] econ::Market build_market(const std::vector<EstimatedCp>& estimates,
                                          double capacity) const;

 private:
  std::size_t min_observations_;
};

/// Relative estimation errors against a ground-truth market (testing aid).
struct EstimationError {
  double max_alpha_error = 0.0;   ///< max_i |alpha_hat - alpha| / alpha.
  double max_beta_error = 0.0;
  double max_profit_error = 0.0;
};

/// Compares estimates against a ground-truth exponential market. Throws when
/// the ground truth is not of the exponential family.
[[nodiscard]] EstimationError compare_estimates(const econ::Market& ground_truth,
                                                const std::vector<EstimatedCp>& estimates);

}  // namespace subsidy::market
