// Canonical market scenarios: the two parameterizations used by the paper's
// numerical evaluations, plus a seeded random market generator for
// property-based testing.
#pragma once

#include <string>
#include <vector>

#include "subsidy/econ/market.hpp"
#include "subsidy/numerics/rng.hpp"

namespace subsidy::market {

/// Section 3 example (Figures 4-5): Phi = theta/mu, mu = 1, nine CP classes
/// with (alpha_i, beta_i) drawn from {1, 3, 5} x {1, 3, 5},
/// m_i = e^{-alpha_i t}, lambda_i = e^{-beta_i phi}. Profitabilities are not
/// used in Section 3; they default to 1 so the market also works in game
/// experiments. Order: row-major over (alpha, beta).
[[nodiscard]] econ::Market section3_market();

/// Section 5 example (Figures 7-11): mu = 1, eight CP classes with
/// alpha_i, beta_i in {2, 5} and v_i in {0.5, 1}. Order: row-major over
/// (v, alpha, beta) with v slowest, matching the paper's 2 x 4 panel layout
/// (upper row v = 0.5, lower row v = 1).
[[nodiscard]] econ::Market section5_market();

/// The parameter tuple behind each provider of the canonical scenarios.
struct CpParameters {
  double alpha = 0.0;
  double beta = 0.0;
  double profitability = 0.0;
};

/// Parameters of the section 3 market, in provider order.
[[nodiscard]] std::vector<CpParameters> section3_parameters();

/// Parameters of the section 5 market, in provider order.
[[nodiscard]] std::vector<CpParameters> section5_parameters();

/// Bounds for random market generation.
struct RandomMarketSpec {
  std::size_t min_providers = 2;
  std::size_t max_providers = 8;
  double alpha_min = 0.5;
  double alpha_max = 6.0;
  double beta_min = 0.5;
  double beta_max = 6.0;
  double profit_min = 0.25;
  double profit_max = 2.0;
  double capacity_min = 0.5;
  double capacity_max = 2.0;
};

/// Seeded random exponential-family market (Phi = theta/mu).
[[nodiscard]] econ::Market random_market(num::Rng& rng, const RandomMarketSpec& spec = {});

}  // namespace subsidy::market
