#include "subsidy/market/estimator.hpp"

#include <cmath>
#include <stdexcept>

#include "subsidy/numerics/stats.hpp"

namespace subsidy::market {

ParameterEstimator::ParameterEstimator(std::size_t min_observations)
    : min_observations_(min_observations) {
  if (min_observations_ < 3) {
    throw std::invalid_argument("ParameterEstimator: need at least 3 observations");
  }
}

std::vector<EstimatedCp> ParameterEstimator::fit(const std::vector<UsageRecord>& trace) const {
  if (trace.empty()) throw std::invalid_argument("ParameterEstimator: empty trace");

  std::size_t n = 0;
  for (const auto& rec : trace) n = std::max(n, rec.provider + 1);

  std::vector<EstimatedCp> estimates;
  estimates.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> t;            // effective price
    std::vector<double> log_m;        // log active users
    std::vector<double> phi;          // measured utilization
    std::vector<double> log_lambda;   // log per-user volume
    std::vector<double> profit_rate;  // profit per unit volume
    for (const auto& rec : trace) {
      if (rec.provider != i) continue;
      if (rec.active_users <= 0.0 || rec.per_user_volume <= 0.0) continue;
      t.push_back(rec.effective_price);
      log_m.push_back(std::log(rec.active_users));
      phi.push_back(rec.utilization);
      log_lambda.push_back(std::log(rec.per_user_volume));
      if (rec.total_volume > 0.0) profit_rate.push_back(rec.content_profit / rec.total_volume);
    }
    if (t.size() < min_observations_) {
      throw std::invalid_argument("ParameterEstimator: provider " + std::to_string(i) +
                                  " has only " + std::to_string(t.size()) + " usable records");
    }

    // log m = log(scale) - alpha * t.
    const num::LinearFit demand_fit = num::fit_linear(t, log_m);
    // log lambda = log(lambda0) - beta * phi.
    const num::LinearFit throughput_fit = num::fit_linear(phi, log_lambda);

    EstimatedCp est;
    est.provider = i;
    est.alpha = -demand_fit.slope;
    est.demand_scale = std::exp(demand_fit.intercept);
    est.demand_r_squared = demand_fit.r_squared;
    est.beta = -throughput_fit.slope;
    est.lambda0 = std::exp(throughput_fit.intercept);
    est.throughput_r_squared = throughput_fit.r_squared;
    est.profitability = profit_rate.empty() ? 0.0 : num::mean(profit_rate);
    est.observations = t.size();
    estimates.push_back(est);
  }
  return estimates;
}

econ::Market ParameterEstimator::build_market(const std::vector<EstimatedCp>& estimates,
                                              double capacity) const {
  if (estimates.empty()) throw std::invalid_argument("build_market: no estimates");
  std::vector<econ::ContentProviderSpec> providers;
  providers.reserve(estimates.size());
  for (const auto& est : estimates) {
    if (est.alpha <= 0.0 || est.beta <= 0.0) {
      throw std::invalid_argument("build_market: provider " + std::to_string(est.provider) +
                                  " has non-positive fitted elasticity");
    }
    econ::ContentProviderSpec cp;
    cp.name = "estimated-cp" + std::to_string(est.provider);
    cp.demand = std::make_shared<econ::ExponentialDemand>(est.alpha, est.demand_scale);
    cp.throughput = std::make_shared<econ::ExponentialThroughput>(est.beta, est.lambda0);
    cp.profitability = std::max(0.0, est.profitability);
    providers.push_back(std::move(cp));
  }
  return econ::Market(econ::IspSpec{capacity}, std::make_shared<econ::LinearUtilization>(),
                      std::move(providers));
}

EstimationError compare_estimates(const econ::Market& ground_truth,
                                  const std::vector<EstimatedCp>& estimates) {
  EstimationError err;
  for (const auto& est : estimates) {
    const auto& cp = ground_truth.provider(est.provider);
    const auto* demand = dynamic_cast<const econ::ExponentialDemand*>(cp.demand.get());
    const auto* throughput =
        dynamic_cast<const econ::ExponentialThroughput*>(cp.throughput.get());
    if (!demand || !throughput) {
      throw std::invalid_argument("compare_estimates: ground truth is not exponential-family");
    }
    err.max_alpha_error =
        std::max(err.max_alpha_error, std::fabs(est.alpha - demand->alpha()) / demand->alpha());
    err.max_beta_error = std::max(err.max_beta_error,
                                  std::fabs(est.beta - throughput->beta()) / throughput->beta());
    if (cp.profitability > 0.0) {
      err.max_profit_error =
          std::max(err.max_profit_error,
                   std::fabs(est.profitability - cp.profitability) / cp.profitability);
    }
  }
  return err;
}

}  // namespace subsidy::market
