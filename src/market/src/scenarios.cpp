#include "subsidy/market/scenarios.hpp"

namespace subsidy::market {

std::vector<CpParameters> section3_parameters() {
  std::vector<CpParameters> params;
  for (double alpha : {1.0, 3.0, 5.0}) {
    for (double beta : {1.0, 3.0, 5.0}) {
      params.push_back({alpha, beta, 1.0});
    }
  }
  return params;
}

std::vector<CpParameters> section5_parameters() {
  std::vector<CpParameters> params;
  // Upper panel row first (v = 0.5), then the high-value row (v = 1), with
  // alpha varying slower than beta inside each row — matching the paper's
  // left-to-right, top-to-bottom panel order.
  for (double v : {0.5, 1.0}) {
    for (double alpha : {2.0, 5.0}) {
      for (double beta : {2.0, 5.0}) {
        params.push_back({alpha, beta, v});
      }
    }
  }
  return params;
}

namespace {

econ::Market from_parameters(double capacity, const std::vector<CpParameters>& params) {
  std::vector<double> alphas;
  std::vector<double> betas;
  std::vector<double> profits;
  alphas.reserve(params.size());
  betas.reserve(params.size());
  profits.reserve(params.size());
  for (const auto& p : params) {
    alphas.push_back(p.alpha);
    betas.push_back(p.beta);
    profits.push_back(p.profitability);
  }
  return econ::Market::exponential(capacity, alphas, betas, profits);
}

}  // namespace

econ::Market section3_market() { return from_parameters(1.0, section3_parameters()); }

econ::Market section5_market() { return from_parameters(1.0, section5_parameters()); }

econ::Market random_market(num::Rng& rng, const RandomMarketSpec& spec) {
  const std::size_t n = static_cast<std::size_t>(
      rng.uniform_int(static_cast<int>(spec.min_providers), static_cast<int>(spec.max_providers)));
  std::vector<CpParameters> params;
  params.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    params.push_back({rng.uniform(spec.alpha_min, spec.alpha_max),
                      rng.uniform(spec.beta_min, spec.beta_max),
                      rng.uniform(spec.profit_min, spec.profit_max)});
  }
  const double capacity = rng.uniform(spec.capacity_min, spec.capacity_max);
  return from_parameters(capacity, params);
}

}  // namespace subsidy::market
