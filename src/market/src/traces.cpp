#include "subsidy/market/traces.hpp"

#include <cmath>
#include <fstream>
#include <stdexcept>

#include "subsidy/io/csv.hpp"

namespace subsidy::market {

std::vector<UsageRecord> generate_trace(const econ::Market& ground_truth,
                                        const TraceConfig& config, num::Rng& rng) {
  if (config.days < 1) throw std::invalid_argument("generate_trace: need >= 1 day");
  if (config.measurement_noise < 0.0) {
    throw std::invalid_argument("generate_trace: noise must be >= 0");
  }
  const core::ModelEvaluator evaluator(ground_truth);
  const std::size_t n = ground_truth.num_providers();

  std::vector<UsageRecord> trace;
  trace.reserve(static_cast<std::size_t>(config.days) * n);

  auto noisy = [&](double value) {
    if (config.measurement_noise == 0.0) return value;
    return value * rng.lognormal(0.0, config.measurement_noise);
  };

  double phi_hint = -1.0;
  for (int day = 0; day < config.days; ++day) {
    // The posted price wanders over the observation band; spreading prices
    // across the band is what makes the demand regression identifiable.
    const double price = rng.uniform(config.price_min, config.price_max);
    std::vector<double> subsidies(n, 0.0);
    if (config.randomize_subsidies) {
      for (auto& s : subsidies) s = rng.uniform(0.0, config.subsidy_max);
    }
    const core::SystemState state = evaluator.evaluate(price, subsidies, phi_hint);
    phi_hint = state.utilization;

    for (std::size_t i = 0; i < n; ++i) {
      UsageRecord rec;
      rec.day = day;
      rec.provider = i;
      rec.posted_price = price;
      rec.subsidy = subsidies[i];
      rec.effective_price = price - subsidies[i];
      rec.utilization = noisy(state.utilization);
      rec.active_users = noisy(state.providers[i].population);
      rec.per_user_volume = noisy(state.providers[i].per_user_rate);
      rec.total_volume = rec.active_users * rec.per_user_volume;
      rec.content_profit =
          noisy(ground_truth.provider(i).profitability * state.providers[i].throughput);
      trace.push_back(rec);
    }
  }
  return trace;
}

namespace {

const std::vector<std::string>& trace_columns() {
  static const std::vector<std::string> columns{
      "day",           "provider",   "posted_price",    "subsidy",
      "effective_price", "utilization", "active_users",  "per_user_volume",
      "total_volume",  "content_profit"};
  return columns;
}

}  // namespace

void write_trace_csv(std::ostream& os, const std::vector<UsageRecord>& trace) {
  io::SweepTable table(trace_columns());
  for (const auto& r : trace) {
    table.add_row({static_cast<double>(r.day), static_cast<double>(r.provider),
                   r.posted_price, r.subsidy, r.effective_price, r.utilization,
                   r.active_users, r.per_user_volume, r.total_volume, r.content_profit});
  }
  io::write_csv(os, table, 12);
}

void write_trace_csv_file(const std::string& path, const std::vector<UsageRecord>& trace) {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("write_trace_csv_file: cannot open '" + path + "'");
  write_trace_csv(file, trace);
}

std::vector<UsageRecord> read_trace_csv(std::istream& is) {
  const io::SweepTable table = io::read_csv(is);
  for (const auto& column : trace_columns()) {
    (void)table.column_index(column);  // throws std::out_of_range when missing
  }
  std::vector<UsageRecord> trace;
  trace.reserve(table.num_rows());
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    UsageRecord rec;
    rec.day = static_cast<int>(table.cell(r, table.column_index("day")));
    rec.provider = static_cast<std::size_t>(table.cell(r, table.column_index("provider")));
    rec.posted_price = table.cell(r, table.column_index("posted_price"));
    rec.subsidy = table.cell(r, table.column_index("subsidy"));
    rec.effective_price = table.cell(r, table.column_index("effective_price"));
    rec.utilization = table.cell(r, table.column_index("utilization"));
    rec.active_users = table.cell(r, table.column_index("active_users"));
    rec.per_user_volume = table.cell(r, table.column_index("per_user_volume"));
    rec.total_volume = table.cell(r, table.column_index("total_volume"));
    rec.content_profit = table.cell(r, table.column_index("content_profit"));
    trace.push_back(rec);
  }
  return trace;
}

std::vector<UsageRecord> read_trace_csv_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("read_trace_csv_file: cannot open '" + path + "'");
  return read_trace_csv(file);
}

}  // namespace subsidy::market
