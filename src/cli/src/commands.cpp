#include "subsidy/cli/commands.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "subsidy/cli/market_spec.hpp"
#include "subsidy/core/core.hpp"
#include "subsidy/core/reference_point.hpp"
#include "subsidy/core/surplus.hpp"
#include "subsidy/io/csv.hpp"
#include "subsidy/io/table.hpp"
#include "subsidy/market/estimator.hpp"
#include "subsidy/market/traces.hpp"
#include "subsidy/numerics/grid.hpp"
#include "subsidy/runtime/parallel_sweep.hpp"
#include "subsidy/runtime/thread_pool.hpp"
#include "subsidy/runtime/topology.hpp"
#include "subsidy/scenario/registry.hpp"
#include "subsidy/scenario/runner.hpp"
#include "subsidy/scenario/spec_grammar.hpp"
#include "subsidy/server/engine.hpp"
#include "subsidy/server/protocol.hpp"
#include "subsidy/server/render.hpp"
#include "subsidy/sim/agent_engine.hpp"
#include "subsidy/sim/cross_validation.hpp"

namespace subsidy::cli {

namespace {

// The solved-state / equilibrium / sweep rendering lives in subsidy::server
// (render.hpp): the serve protocol's byte-identity contract makes the server
// the single source of truth for these bytes, and the one-shot commands
// render through the same functions.
using server::render_state;
using server::solve_equilibrium;

int cmd_evaluate(const Args& args, std::ostream& out) {
  const econ::Market market = parse_market_spec(args.get_or("market", "section5"));
  const double price = args.get_double("price");
  std::vector<double> subsidies(market.num_providers(), 0.0);
  if (args.has("subsidies")) {
    subsidies = args.get_double_list("subsidies");
    if (subsidies.size() != market.num_providers()) {
      throw std::invalid_argument("--subsidies needs " +
                                  std::to_string(market.num_providers()) + " values");
    }
  }
  const core::ModelEvaluator evaluator(market);
  render_state(out, market, evaluator.evaluate(price, subsidies));
  return 0;
}

int cmd_nash(const Args& args, std::ostream& out) {
  const econ::Market market = parse_market_spec(args.get_or("market", "section5"));
  const double price = args.get_double("price");
  const double cap = args.get_double("cap");
  const core::NashResult nash =
      solve_equilibrium(market, price, cap, args.get_or("solver", "auto"));
  return server::render_equilibrium(out, market, price, cap, nash);
}

int cmd_sweep(const Args& args, std::ostream& out) {
  const econ::Market market = parse_market_spec(args.get_or("market", "section5"));
  const double cap = args.get_double_or("cap", 0.0);
  const auto prices = num::linspace(args.get_double_or("pmin", 0.05),
                                    args.get_double_or("pmax", 2.0),
                                    static_cast<std::size_t>(args.get_int_or("points", 41)));
  // The chain length is part of the sweep semantics (it decides which solves
  // are warm-started), so it is independent of --jobs: any job count yields
  // bit-identical rows. --chain 0 makes the whole price axis one chain.
  runtime::SweepOptions options;
  options.jobs = runtime::resolve_jobs(args.get_int_or("jobs", 1));
  options.chain_length = static_cast<std::size_t>(std::max(0, args.get_int_or("chain", 8)));
  if (args.has("numa")) options.numa = runtime::parse_numa_setting(args.get("numa"));
  const runtime::ParallelSweepRunner runner(market, options);
  const io::SweepTable table = server::sweep_table(runner.run_prices(cap, prices));
  if (args.has("out")) {
    io::write_csv_file(args.get("out"), table);
    out << "wrote " << table.num_rows() << " rows to " << args.get("out") << "\n";
  } else {
    io::write_csv(out, table, 8);
  }
  return 0;
}

int cmd_optimize_price(const Args& args, std::ostream& out) {
  const econ::Market market = parse_market_spec(args.get_or("market", "section5"));
  core::PriceSearchOptions options;
  options.price_min = args.get_double_or("pmin", 0.05);
  options.price_max = args.get_double_or("pmax", 2.5);
  options.grid_points = args.get_int_or("points", 25);
  // --chain fixes the warm-start chain length (search semantics, constant
  // regardless of --jobs so results are identical for any jobs value); the
  // default 4 keeps the grid parallelizable. --chain 0 = one continuation.
  options.chain_length = static_cast<std::size_t>(std::max(0, args.get_int_or("chain", 4)));
  options.jobs = runtime::resolve_jobs(args.get_int_or("jobs", 1));
  const core::IspPriceOptimizer optimizer(market, options);
  const core::OptimalPrice best = optimizer.optimize(args.get_double("cap"));
  out << "p*=" << best.price << " revenue=" << best.revenue
      << " welfare=" << best.state.welfare << "\n\n";
  render_state(out, market, best.state);
  return 0;
}

int cmd_policy(const Args& args, std::ostream& out) {
  const econ::Market market = parse_market_spec(args.get_or("market", "section5"));
  const std::vector<double> caps =
      args.has("caps") ? args.get_double_list("caps")
                       : std::vector<double>{0.0, 0.5, 1.0, 1.5, 2.0};
  const core::PriceResponse response =
      args.has("price") ? core::PriceResponse::fixed(args.get_double("price"))
                        : core::PriceResponse::monopoly();
  const core::PolicyAnalyzer analyzer(market, response);
  // Each cap is solved independently (cold), so the rows are identical for
  // any --jobs value; with jobs > 1 the caps are evaluated across a pool.
  const std::size_t jobs = runtime::resolve_jobs(args.get_int_or("jobs", 1));
  const std::vector<core::PolicyPoint> points = runtime::parallel_map(
      caps, jobs, [&analyzer](const double& cap) { return analyzer.evaluate(cap); });
  io::SweepTable table({"q", "price", "phi", "revenue", "welfare"});
  for (const core::PolicyPoint& point : points) {
    table.add_row({point.policy_cap, point.price, point.state.utilization,
                   point.state.revenue, point.state.welfare});
  }
  io::print_table(out, table, 4);
  return 0;
}

int cmd_surplus(const Args& args, std::ostream& out) {
  const econ::Market market = parse_market_spec(args.get_or("market", "section5"));
  const double price = args.get_double("price");
  const double cap = args.get_double_or("cap", 0.0);
  const core::NashResult nash = solve_equilibrium(market, price, cap, "auto");
  const core::ModelEvaluator evaluator(market);
  const core::SurplusReport report = core::surplus_decomposition(evaluator, nash.state);
  io::ConsoleTable table({"CP", "user surplus", "cp profit", "isp receipts"});
  for (std::size_t i = 0; i < report.providers.size(); ++i) {
    const auto& slice = report.providers[i];
    table.add_row({market.provider(i).name, io::format_double(slice.user_surplus, 4),
                   io::format_double(slice.cp_profit, 4),
                   io::format_double(slice.isp_receipts, 4)});
  }
  table.print(out);
  out << "\nuser=" << report.user_surplus << " cp=" << report.cp_profit
      << " isp=" << report.isp_revenue << " total=" << report.total_surplus
      << " (paper W=" << report.paper_welfare << ")\n";
  return 0;
}

int cmd_generate_trace(const Args& args, std::ostream& out) {
  const econ::Market market = parse_market_spec(args.get_or("market", "section5"));
  market::TraceConfig config;
  config.days = args.get_int_or("days", 120);
  config.measurement_noise = args.get_double_or("noise", 0.05);
  config.price_min = args.get_double_or("pmin", 0.2);
  config.price_max = args.get_double_or("pmax", 1.8);
  num::Rng rng(static_cast<std::uint64_t>(args.get_int_or("seed", 1)));
  const auto trace = market::generate_trace(market, config, rng);
  if (args.has("out")) {
    market::write_trace_csv_file(args.get("out"), trace);
    out << "wrote " << trace.size() << " records to " << args.get("out") << "\n";
  } else {
    market::write_trace_csv(out, trace);
  }
  return 0;
}

int cmd_calibrate(const Args& args, std::ostream& out) {
  const auto trace = market::read_trace_csv_file(args.get("trace"));
  const market::ParameterEstimator estimator;
  const auto estimates = estimator.fit(trace);
  io::ConsoleTable table({"CP", "alpha", "beta", "v", "R2(demand)", "R2(throughput)", "obs"});
  for (const auto& est : estimates) {
    table.add_row({"cp" + std::to_string(est.provider), io::format_double(est.alpha, 4),
                   io::format_double(est.beta, 4), io::format_double(est.profitability, 4),
                   io::format_double(est.demand_r_squared, 4),
                   io::format_double(est.throughput_r_squared, 4),
                   std::to_string(est.observations)});
  }
  table.print(out);
  if (args.has("price") && args.has("cap")) {
    const econ::Market rebuilt =
        estimator.build_market(estimates, args.get_double_or("capacity", 1.0));
    out << "\npolicy answer on the calibrated market:\n";
    const core::NashResult nash =
        solve_equilibrium(rebuilt, args.get_double("price"), args.get_double("cap"), "auto");
    render_state(out, rebuilt, nash.state);
  }
  return 0;
}

/// `scenario run <file-or-name> [--jobs N] [--out-dir D] [--precision P]
/// [--strict]`, `scenario list`, `scenario print <name>`. Parsed by hand
/// (not Args) because the sub-subcommand and target are positional.
int cmd_scenario(const std::vector<std::string>& argv, std::ostream& out, std::ostream& err) {
  const std::string scenario_usage =
      "usage: subsidy_cli scenario run <file-or-name> [--jobs N] [--numa off|auto|N]"
      " [--out-dir D] [--precision P] [--strict]\n"
      "       subsidy_cli scenario list\n"
      "       subsidy_cli scenario print <name>\n";
  if (argv.size() < 2) {
    err << scenario_usage;
    return 2;
  }
  const std::string& action = argv[1];

  if (action == "list") {
    io::ConsoleTable table({"name", "description"});
    for (const scenario::RegistryEntry& entry : scenario::registry_entries()) {
      table.add_row({entry.name, entry.description});
    }
    table.print(out);
    out << "\nrun one with `subsidy_cli scenario run <name>` or dump its file with"
           " `subsidy_cli scenario print <name>`\n";
    return 0;
  }

  if (argv.size() < 3) {
    err << scenario_usage;
    return 2;
  }
  const std::string& target = argv[2];

  if (action == "print") {
    out << scenario::registry_scenario_text(target);
    return 0;
  }
  if (action != "run") {
    err << "unknown scenario action '" << action << "'\n\n" << scenario_usage;
    return 2;
  }

  const auto parse_count = [](const std::string& value, const std::string& flag) {
    const double parsed = scenario::parse_number(value, flag);
    if (parsed < 0.0 || parsed != static_cast<double>(static_cast<int>(parsed))) {
      throw std::invalid_argument(flag + ": '" + value +
                                  "' must be a non-negative integer");
    }
    return static_cast<int>(parsed);
  };
  scenario::RunOptions options;
  for (std::size_t k = 3; k < argv.size(); ++k) {
    const std::string& flag = argv[k];
    if (flag == "--strict") {
      options.strict = true;
      continue;
    }
    if (flag != "--jobs" && flag != "--out-dir" && flag != "--precision" &&
        flag != "--numa") {
      throw std::invalid_argument("unknown scenario option '" + flag + "'");
    }
    if (k + 1 >= argv.size()) {
      throw std::invalid_argument("option '" + flag + "' needs a value");
    }
    const std::string& value = argv[++k];
    if (flag == "--jobs") {
      options.jobs = runtime::resolve_jobs(parse_count(value, "--jobs"));
    } else if (flag == "--precision") {
      options.precision = parse_count(value, "--precision");
    } else if (flag == "--numa") {
      options.numa = runtime::parse_numa_setting(value);
    } else {
      options.output_dir = value;
    }
  }

  // An existing file wins; anything that *looks* like a path ('/' or a .scn
  // extension) is treated as one even when absent, so a typo'd path reports
  // "cannot open" instead of "unknown scenario". Bare names fall back to the
  // built-in registry.
  const bool looks_like_path =
      target.find('/') != std::string::npos ||
      (target.size() > 4 && target.compare(target.size() - 4, 4, ".scn") == 0);
  const scenario::Scenario parsed =
      std::filesystem::is_regular_file(target) || looks_like_path
          ? scenario::parse_scenario_file(target)
          : scenario::make_registry_scenario(target);
  const scenario::ScenarioRunner runner(parsed, options);
  const scenario::ScenarioReport report = runner.run();

  out << "scenario '" << report.scenario_name << "': " << report.experiments.size()
      << " experiment(s)\n";
  for (const scenario::ExperimentResult& result : report.experiments) {
    out << "  [" << scenario::to_string(result.type) << "] " << result.label << ": "
        << result.table.num_rows() << " rows";
    if (!result.failures.empty()) out << " (" << result.failures.size() << " failed)";
    if (!result.converged) out << " (NOT all converged)";
    if (result.rescued_damped != 0 || result.rescued_extragradient != 0) {
      out << " (rescued: " << result.rescued_damped << " damped, "
          << result.rescued_extragradient << " extragradient)";
    }
    if (!result.output_path.empty()) {
      out << " -> " << result.output_path << "\n";
    } else {
      out << "\n";
      io::write_csv(out, result.table, options.precision);
    }
  }
  if (report.num_failures() != 0) {
    err << report.num_failures() << " solver failure(s)";
    if (!report.errors_path.empty()) err << "; details in " << report.errors_path;
    err << "\n";
  }
  return report.all_converged() && report.num_failures() == 0 ? 0 : 1;
}

int cmd_sim(const Args& args, std::ostream& out, std::ostream& err) {
  const econ::Market market = parse_market_spec(args.get_or("market", "section5"));
  const double price = args.get_double("price");
  const double cap = args.get_double_or("cap", 0.0);
  // The analytic reference fixes the subsidies the agents face (the Nash
  // profile when --cap > 0, zeros otherwise) and is the point --validate
  // holds the stochastic steady state against.
  const core::EquilibriumReference reference =
      core::compute_equilibrium_reference(market, price, cap);

  sim::SimConfig config;
  config.price = price;
  config.subsidies = reference.subsidies;
  config.ticks = static_cast<std::size_t>(std::max(1, args.get_int_or("ticks", 120)));
  config.replicas = static_cast<std::size_t>(std::max(1, args.get_int_or("replicas", 1)));
  config.snapshot_every =
      static_cast<std::size_t>(std::max(0, args.get_int_or("snapshot", 1)));
  config.jobs = runtime::resolve_jobs(args.get_int_or("jobs", 1));
  if (args.has("numa")) config.numa = runtime::parse_numa_setting(args.get("numa"));
  const auto users = static_cast<std::size_t>(std::max(1, args.get_int_or("users", 2000)));
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 1));
  const auto wakeup = static_cast<std::size_t>(std::max(1, args.get_int_or("wakeup", 1)));
  const double noise = args.get_double_or("noise", 0.0);
  const double congestion = args.get_double_or("congestion", 0.0);

  sim::AgentMarketEngine engine(
      market,
      sim::AgentMarketEngine::uniform_groups(market, users, seed, wakeup, noise, congestion),
      config);
  const sim::SimResult result = engine.run();

  out << "agents=" << engine.num_agents() << " replicas=" << config.replicas
      << " ticks=" << result.completed_ticks << "/" << config.ticks
      << " decisions=" << result.decisions << "\n";
  if (!reference.nash_converged) out << "warning: Nash reference did not converge\n";
  for (std::size_t r = 0; r < config.replicas; ++r) {
    out << "  replica " << r << ": phi=" << result.final_phi[r]
        << " status=" << core::to_string(result.statuses[r]) << "\n";
  }
  out << "analytic phi=" << reference.phi << "\n";
  if (args.has("out")) {
    io::write_csv_file(args.get("out"), result.snapshots);
    out << "wrote " << result.snapshots.num_rows() << " snapshot rows to " << args.get("out")
        << "\n";
  } else if (config.snapshot_every == 0) {
    io::write_csv(out, result.snapshots, 8);
  }
  if (result.failed) {
    err << "simulation aborted: " << result.failure_detail << "\n";
    return 1;
  }

  if (args.has("validate")) {
    const double tolerance = args.get_double("validate");
    const sim::CrossValidationReport report =
        sim::validate_against_reference(result, reference, tolerance);
    io::ConsoleTable table({"quantity", "simulated", "analytic", "error", "pass"});
    for (const sim::ValidationCheck& check : report.checks) {
      table.add_row({check.quantity, io::format_double(check.simulated, 6),
                     io::format_double(check.analytic, 6), io::format_double(check.error, 6),
                     check.pass ? "yes" : "NO"});
    }
    table.print(out);
    out << "cross-validation: " << (report.pass ? "PASS" : "FAIL") << " (tolerance "
        << tolerance << ")\n";
    if (!report.pass) return 1;
  }
  return 0;
}

int cmd_validate(const Args& args, std::ostream& out) {
  const econ::Market market = parse_market_spec(args.get_or("market", "section5"));
  const econ::ValidationReport report = market.validate();
  out << "assumptions 1 & 2: " << (report.ok ? "satisfied" : "VIOLATED") << "\n";
  for (const auto& violation : report.violations) out << "  - " << violation << "\n";
  return report.ok ? 0 : 1;
}

server::ServerConfig serve_config(const Args& args) {
  server::ServerConfig config;
  config.market_resolver = [](const std::string& spec) { return parse_market_spec(spec); };
  config.cache_capacity =
      static_cast<std::size_t>(std::max(0, args.get_int_or("cache", 256)));
  config.default_jobs = args.get_int_or("jobs", 1);
  config.verify_hints = args.flag("verify-hints");
  if (args.has("numa")) config.numa = runtime::parse_numa_setting(args.get("numa"));
  return config;
}

/// `client --op equilibrium|sweep|one_sided [query options] [--id X] [--run]`:
/// encodes one serve-protocol request line (the scriptable way to build
/// well-formed requests), or with --run executes it against an in-process
/// engine and prints the response text — which is byte-identical to the
/// corresponding one-shot command by the serving contract.
int cmd_client(const Args& args, std::ostream& out, std::ostream& err) {
  server::Request request;
  request.id = args.get_or("id", "");
  request.op = args.get_or("op", "equilibrium");
  request.market = args.get_or("market", "section5");
  request.solver = args.get_or("solver", "auto");
  if (args.has("price")) request.price = args.get_double("price");
  if (args.has("cap")) request.cap = args.get_double("cap");
  if (args.has("pmin")) request.pmin = args.get_double("pmin");
  if (args.has("pmax")) request.pmax = args.get_double("pmax");
  if (args.has("points")) request.points = args.get_int_or("points", 0);
  if (args.has("chain")) request.chain = args.get_int_or("chain", 0);
  if (args.has("jobs")) request.jobs = args.get_int_or("jobs", 0);
  if (args.has("precision")) request.precision = args.get_int_or("precision", 0);
  if (args.has("prices")) request.prices = args.get_double_list("prices");

  if (!args.flag("run")) {
    out << server::serialize_request(request) << "\n";
    return 0;
  }
  server::ServerEngine engine(serve_config(args));
  const server::Response response = engine.serve_one(request);
  if (!response.ok) {
    err << "error: " << response.error << "\n";
    return response.exit_code;
  }
  out << response.text;
  return response.exit_code;
}

}  // namespace

int run_serve(const std::vector<std::string>& argv, std::istream& in, std::ostream& out,
              std::ostream& err) {
  const Args args = Args::parse(argv, {"verify-hints", "stats"});
  server::ServerEngine engine(serve_config(args));

  // One request per line; a blank line is a batch boundary — everything
  // accumulated since the last boundary is served as ONE coalesced batch
  // (the pipe-mode analogue of the async dispatcher's drain-the-backlog
  // wakeup). Responses come back one line each, in request order; requests
  // that fail to parse become in-band error responses in their slot.
  std::vector<std::string> batch_lines;
  const auto flush = [&] {
    if (batch_lines.empty()) return;
    std::vector<server::Response> responses(batch_lines.size());
    std::vector<server::Request> requests;
    std::vector<std::size_t> slots;
    requests.reserve(batch_lines.size());
    for (std::size_t k = 0; k < batch_lines.size(); ++k) {
      try {
        requests.push_back(server::parse_request(batch_lines[k]));
        slots.push_back(k);
      } catch (const std::exception& e) {
        responses[k].ok = false;
        responses[k].exit_code = 2;
        responses[k].error = e.what();
      }
    }
    const std::vector<server::Response> served = engine.serve(requests);
    for (std::size_t k = 0; k < slots.size(); ++k) responses[slots[k]] = served[k];
    for (const server::Response& response : responses) {
      out << server::serialize_response(response) << "\n";
    }
    out.flush();
    batch_lines.clear();
  };

  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) {
      flush();
      continue;
    }
    batch_lines.push_back(line);
  }
  flush();

  if (args.flag("stats")) {
    const server::ServerStats stats = engine.stats();
    err << "serve: requests=" << stats.requests << " batches=" << stats.batches
        << " coalesced_lanes=" << stats.coalesced_lanes
        << " exact_hits=" << stats.exact_hits << " near_hits=" << stats.near_hits
        << " hint_confirmed=" << stats.hint_confirmed
        << " hint_divergent=" << stats.hint_divergent
        << " evictions=" << stats.evictions << " cache_size=" << stats.cache_size << "\n";
  }
  return 0;
}

std::string usage() {
  std::ostringstream ss;
  ss << "subsidy_cli — subsidization competition toolbox\n\n"
        "usage: subsidy_cli <command> [options]\n\n"
        "commands:\n"
        "  evaluate        --market M --price P [--subsidies s1,s2,...]\n"
        "  nash            --market M --price P --cap Q [--solver br|eg|auto]\n"
        "  sweep           --market M [--cap Q --pmin A --pmax B --points N --out F]\n"
        "                  [--jobs N (parallel; 0 = hardware) --chain L (warm-start run)]\n"
        "                  [--numa off|auto|N (memory-domain sharding; rows invariant)]\n"
        "  optimize-price  --market M --cap Q [--pmin A --pmax B --points N]\n"
        "                  [--jobs N --chain L (parallel grid phase, jobs-invariant)]\n"
        "  policy          --market M [--price P | (monopoly)] [--caps 0,0.5,...] [--jobs N]\n"
        "  surplus         --market M --price P [--cap Q]\n"
        "  generate-trace  --market M [--days N --noise X --seed S --out F]\n"
        "  calibrate       --trace F [--capacity MU --price P --cap Q]\n"
        "  validate        --market M\n"
        "  sim             --market M --price P [--cap Q --users N --ticks T --seed S]\n"
        "                  [--wakeup W --replicas R --noise X --congestion C --snapshot K]\n"
        "                  [--jobs N --numa MODE --out F --validate TOL (agent simulation)]\n"
        "  scenario        run <file-or-name> [--jobs N --numa MODE --out-dir D\n"
        "                  --precision P --strict] | list | print <name>\n"
        "  serve           [--jobs N --numa MODE --cache N --verify-hints --stats]\n"
        "                  (line-JSON daemon on stdin/stdout; blank line flushes a batch)\n"
        "  client          --op equilibrium|sweep|one_sided [query options] [--id X]\n"
        "                  [--run]   (emit one serve request line, or --run in-process)\n\n"
        "market spec: "
     << market_spec_help() << "\n";
  return ss.str();
}

int run_command(const Args& args, std::ostream& out, std::ostream& err) {
  const std::string& command = args.command();
  try {
    if (command == "evaluate") return cmd_evaluate(args, out);
    if (command == "nash") return cmd_nash(args, out);
    if (command == "sweep") return cmd_sweep(args, out);
    if (command == "optimize-price") return cmd_optimize_price(args, out);
    if (command == "policy") return cmd_policy(args, out);
    if (command == "surplus") return cmd_surplus(args, out);
    if (command == "generate-trace") return cmd_generate_trace(args, out);
    if (command == "calibrate") return cmd_calibrate(args, out);
    if (command == "validate") return cmd_validate(args, out);
    if (command == "sim") return cmd_sim(args, out, err);
    if (command == "help" || command == "--help") {
      out << usage();
      return 0;
    }
    err << "unknown command '" << command << "'\n\n" << usage();
    return 2;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 2;
  }
}

int run_cli(const std::vector<std::string>& argv, std::ostream& out, std::ostream& err) {
  if (argv.empty()) {
    err << usage();
    return 2;
  }
  // `scenario` takes positional operands (action + file/name), so it is
  // dispatched before the --key/value Args grammar.
  if (argv.front() == "scenario") {
    try {
      return cmd_scenario(argv, out, err);
    } catch (const std::exception& e) {
      err << "error: " << e.what() << "\n";
      return 2;
    }
  }
  // `serve` and `client` take boolean flags, which the bare Args grammar in
  // the default path below does not know about.
  if (argv.front() == "serve") {
    try {
      return run_serve(argv, std::cin, out, err);
    } catch (const std::exception& e) {
      err << "error: " << e.what() << "\n";
      return 2;
    }
  }
  if (argv.front() == "client") {
    try {
      const Args args = Args::parse(argv, {"run", "verify-hints"});
      return cmd_client(args, out, err);
    } catch (const std::exception& e) {
      err << "error: " << e.what() << "\n";
      return 2;
    }
  }
  try {
    const Args args = Args::parse(argv);
    return run_command(args, out, err);
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n\n" << usage();
    return 2;
  }
}

}  // namespace subsidy::cli
