#include "subsidy/cli/market_spec.hpp"

#include <stdexcept>

#include "subsidy/cli/args.hpp"
#include "subsidy/market/scenarios.hpp"
#include "subsidy/scenario/spec_grammar.hpp"

namespace subsidy::cli {

namespace {

using scenario::split_list;

/// One `beta` list entry: "<beta>", "<beta>+power", "<beta>+delay",
/// "+power:<beta>" or "+delay:<beta>" (and "+exp:<beta>" for symmetry). The
/// number is the decay coefficient of whichever family is selected.
std::shared_ptr<const econ::ThroughputCurve> parse_beta_entry(const std::string& entry) {
  std::string family = "exp";
  std::string number = entry;
  const std::size_t plus = entry.find('+');
  if (plus != std::string::npos) {
    number = entry.substr(0, plus);
    std::string suffix = entry.substr(plus + 1);
    const std::size_t colon = suffix.find(':');
    if (colon != std::string::npos) {
      if (!number.empty()) {
        throw std::invalid_argument("beta entry '" + entry +
                                    "' gives the coefficient twice (before '+' and after ':')");
      }
      number = suffix.substr(colon + 1);
      suffix = suffix.substr(0, colon);
    }
    family = suffix;
  }
  if (number.empty()) {
    throw std::invalid_argument("beta entry '" + entry + "' has no coefficient");
  }
  return scenario::parse_throughput_spec(family + ":beta=" + number);
}

econ::Market parse_exponential_spec(const std::string& body) {
  // body: "mu=1;alpha=1,2;beta=2,1;v=1,1" with optional demand=/util= fields
  // and per-provider +power/+delay beta overrides (see market_spec_help()).
  double mu = 1.0;
  std::vector<double> alphas;
  std::vector<std::string> betas;
  std::vector<double> profits;
  std::vector<std::string> demands;
  std::shared_ptr<const econ::UtilizationModel> utilization;

  auto consume = [&](const std::string& chunk) {
    const std::size_t eq = chunk.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("market spec: field '" + chunk + "' is missing '='");
    }
    const std::string key = chunk.substr(0, eq);
    const std::string value = chunk.substr(eq + 1);
    if (key == "mu") {
      mu = scenario::parse_number(value, "market spec mu");
    } else if (key == "alpha") {
      alphas = parse_double_list(value);
    } else if (key == "beta") {
      betas = split_list(value, ',');
    } else if (key == "v") {
      profits = parse_double_list(value);
    } else if (key == "demand") {
      demands = split_list(value, '|');
    } else if (key == "util") {
      utilization = scenario::parse_utilization_spec(value);
    } else {
      throw std::invalid_argument("market spec: unknown field '" + key + "'");
    }
  };
  for (const std::string& field : split_list(body, ';')) {
    if (!field.empty()) consume(field);
  }

  if (betas.empty() || betas.front().empty()) {
    throw std::invalid_argument("market spec: beta must be a non-empty list");
  }
  const std::size_t n = betas.size();
  if (profits.size() != n) {
    throw std::invalid_argument("market spec: v must list one value per beta entry");
  }
  if (!alphas.empty() && !demands.empty()) {
    throw std::invalid_argument(
        "market spec: give either alpha= (exponential demand) or demand=, not both");
  }
  if (alphas.empty() && demands.empty()) {
    throw std::invalid_argument("market spec: need alpha= or demand=");
  }
  if (!alphas.empty() && alphas.size() != n) {
    throw std::invalid_argument("market spec: alpha must list one value per beta entry");
  }
  if (demands.size() > 1 && demands.size() != n) {
    throw std::invalid_argument(
        "market spec: demand= needs one spec, or one per provider separated by '|'");
  }

  std::vector<econ::ContentProviderSpec> providers;
  for (std::size_t i = 0; i < n; ++i) {
    econ::ContentProviderSpec cp;
    cp.name = "cp" + std::to_string(i);
    if (!alphas.empty()) {
      cp.demand = std::make_shared<econ::ExponentialDemand>(alphas[i]);
    } else {
      cp.demand = scenario::parse_demand_spec(demands.size() == 1 ? demands.front()
                                                                  : demands[i]);
    }
    cp.throughput = parse_beta_entry(betas[i]);
    cp.profitability = profits[i];
    providers.push_back(std::move(cp));
  }
  if (!utilization) utilization = std::make_shared<econ::LinearUtilization>();
  return econ::Market(econ::IspSpec{mu}, std::move(utilization), std::move(providers));
}

/// True when `suffix` (the text after the last '+') is a whole utilization
/// suffix — "delay" or "power:<number>" — rather than part of a field.
bool is_utilization_suffix(const std::string& suffix) {
  if (suffix == "delay") return true;
  if (suffix.rfind("power:", 0) != 0) return false;
  try {
    (void)scenario::parse_number(suffix.substr(6), "utilization gamma");
    return true;
  } catch (const std::invalid_argument&) {
    return false;
  }
}

}  // namespace

econ::Market parse_market_spec(const std::string& spec) {
  // Split an optional trailing "+delay" / "+power:<gamma>" utilization
  // suffix — but only off *named* bases (section3/section5). Inside an exp:
  // body a '+' is always a per-provider throughput override and the
  // utilization model is set with util=, so the two uses of '+' can never
  // collide.
  std::string base = spec;
  std::string suffix;
  if (spec.rfind("exp:", 0) != 0) {
    const std::size_t plus = spec.rfind('+');
    if (plus != std::string::npos && is_utilization_suffix(spec.substr(plus + 1))) {
      base = spec.substr(0, plus);
      suffix = spec.substr(plus + 1);
    }
  }

  econ::Market market = [&]() {
    if (base == "section3") return market::section3_market();
    if (base == "section5") return market::section5_market();
    if (base.rfind("exp:", 0) == 0) return parse_exponential_spec(base.substr(4));
    throw std::invalid_argument("unknown market spec '" + base + "'; " + market_spec_help());
  }();

  if (suffix.empty()) return market;
  return market.with_utilization_model(scenario::parse_utilization_spec(suffix));
}

std::string market_spec_help() {
  return "expected 'section3' or 'section5' (optionally followed by '+delay' or "
         "'+power:<gamma>' swapping the utilization model), or "
         "'exp:mu=<x>;alpha=<list>;beta=<list>;v=<list>' where beta entries may carry a "
         "per-provider throughput family ('2+power', '+delay:3'), demand=<spec>[|<spec>...] "
         "replaces alpha= with any demand family (exp:alpha=, logit:k=,t0=, iso:eps=, "
         "linear:tmax=), and util=<linear|delay|power:<gamma>> sets the utilization model";
}

}  // namespace subsidy::cli
