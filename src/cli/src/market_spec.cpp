#include "subsidy/cli/market_spec.hpp"

#include <stdexcept>

#include "subsidy/cli/args.hpp"
#include "subsidy/market/scenarios.hpp"

namespace subsidy::cli {

namespace {

econ::Market parse_exponential_spec(const std::string& body) {
  // body: "mu=1;alpha=1,2;beta=2,1;v=1,1"
  double mu = 1.0;
  std::vector<double> alphas;
  std::vector<double> betas;
  std::vector<double> profits;

  std::string field;
  auto consume = [&](const std::string& chunk) {
    const std::size_t eq = chunk.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("market spec: field '" + chunk + "' is missing '='");
    }
    const std::string key = chunk.substr(0, eq);
    const std::string value = chunk.substr(eq + 1);
    if (key == "mu") {
      mu = parse_double_list(value).at(0);
    } else if (key == "alpha") {
      alphas = parse_double_list(value);
    } else if (key == "beta") {
      betas = parse_double_list(value);
    } else if (key == "v") {
      profits = parse_double_list(value);
    } else {
      throw std::invalid_argument("market spec: unknown field '" + key + "'");
    }
  };
  for (char c : body) {
    if (c == ';') {
      consume(field);
      field.clear();
    } else {
      field.push_back(c);
    }
  }
  if (!field.empty()) consume(field);

  if (alphas.empty() || alphas.size() != betas.size() || alphas.size() != profits.size()) {
    throw std::invalid_argument(
        "market spec: alpha/beta/v must be non-empty lists of equal length");
  }
  return econ::Market::exponential(mu, alphas, betas, profits);
}

}  // namespace

econ::Market parse_market_spec(const std::string& spec) {
  // Split an optional "+<model>" suffix off the base spec.
  std::string base = spec;
  std::string suffix;
  const std::size_t plus = spec.find('+');
  if (plus != std::string::npos) {
    base = spec.substr(0, plus);
    suffix = spec.substr(plus + 1);
  }

  econ::Market market = [&]() {
    if (base == "section3") return market::section3_market();
    if (base == "section5") return market::section5_market();
    if (base.rfind("exp:", 0) == 0) return parse_exponential_spec(base.substr(4));
    throw std::invalid_argument("unknown market spec '" + base + "'; " + market_spec_help());
  }();

  if (suffix.empty()) return market;
  if (suffix == "delay") {
    return market.with_utilization_model(std::make_shared<econ::DelayUtilization>());
  }
  if (suffix.rfind("power:", 0) == 0) {
    const double gamma = parse_double_list(suffix.substr(6)).at(0);
    return market.with_utilization_model(std::make_shared<econ::PowerUtilization>(gamma));
  }
  throw std::invalid_argument("unknown utilization suffix '+" + suffix + "'; " +
                              market_spec_help());
}

std::string market_spec_help() {
  return "expected 'section3', 'section5' or 'exp:mu=<x>;alpha=<list>;beta=<list>;v=<list>',"
         " optionally followed by '+delay' or '+power:<gamma>'";
}

}  // namespace subsidy::cli
