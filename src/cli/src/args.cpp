#include "subsidy/cli/args.hpp"

#include <algorithm>
#include <stdexcept>

namespace subsidy::cli {

std::vector<double> parse_double_list(const std::string& text) {
  std::vector<double> values;
  std::string cell;
  auto flush = [&] {
    if (cell.empty()) throw std::invalid_argument("empty cell in list '" + text + "'");
    std::size_t consumed = 0;
    const double value = std::stod(cell, &consumed);
    if (consumed != cell.size()) {
      throw std::invalid_argument("non-numeric cell '" + cell + "' in list '" + text + "'");
    }
    values.push_back(value);
    cell.clear();
  };
  for (char c : text) {
    if (c == ',') {
      flush();
    } else {
      cell.push_back(c);
    }
  }
  flush();
  return values;
}

Args Args::parse(const std::vector<std::string>& argv,
                 const std::vector<std::string>& known_flags) {
  Args args;
  if (argv.empty()) throw std::invalid_argument("missing command");
  args.command_ = argv[0];

  for (std::size_t i = 1; i < argv.size(); ++i) {
    const std::string& token = argv[i];
    if (token.rfind("--", 0) != 0) {
      throw std::invalid_argument("unexpected positional argument '" + token + "'");
    }
    const std::string name = token.substr(2);
    if (name.empty()) throw std::invalid_argument("empty option name '--'");
    if (std::find(known_flags.begin(), known_flags.end(), name) != known_flags.end()) {
      args.flags_.push_back(name);
      continue;
    }
    if (i + 1 >= argv.size()) {
      throw std::invalid_argument("option --" + name + " is missing its value");
    }
    args.options_[name] = argv[++i];
  }
  return args;
}

bool Args::has(const std::string& key) const { return options_.count(key) > 0; }

bool Args::flag(const std::string& name) const {
  return std::find(flags_.begin(), flags_.end(), name) != flags_.end();
}

std::string Args::get(const std::string& key) const {
  const auto it = options_.find(key);
  if (it == options_.end()) throw std::invalid_argument("missing required option --" + key);
  return it->second;
}

std::string Args::get_or(const std::string& key, const std::string& fallback) const {
  const auto it = options_.find(key);
  return it == options_.end() ? fallback : it->second;
}

double Args::get_double(const std::string& key) const {
  const std::string text = get(key);
  try {
    std::size_t consumed = 0;
    const double value = std::stod(text, &consumed);
    if (consumed != text.size()) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + key + " expects a number, got '" + text + "'");
  }
}

double Args::get_double_or(const std::string& key, double fallback) const {
  return has(key) ? get_double(key) : fallback;
}

int Args::get_int_or(const std::string& key, int fallback) const {
  return has(key) ? static_cast<int>(get_double(key)) : fallback;
}

std::vector<double> Args::get_double_list(const std::string& key) const {
  try {
    return parse_double_list(get(key));
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument("option --" + key + ": " + e.what());
  }
}

std::vector<std::string> Args::keys() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : options_) out.push_back(key);
  return out;
}

}  // namespace subsidy::cli
