// Minimal command-line argument parsing for the subsidy_cli tool: a
// subcommand followed by --key value pairs and boolean --flags. Kept in a
// library so the parsing rules are unit-testable.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace subsidy::cli {

/// Parsed command line: `tool <command> [--key value]... [--flag]...`.
class Args {
 public:
  /// Parses argv (excluding argv[0]). Throws std::invalid_argument on
  /// malformed input (missing value, unknown shape).
  static Args parse(const std::vector<std::string>& argv,
                    const std::vector<std::string>& known_flags = {});

  [[nodiscard]] const std::string& command() const noexcept { return command_; }

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] bool flag(const std::string& name) const;

  /// Required string option; throws std::invalid_argument when absent.
  [[nodiscard]] std::string get(const std::string& key) const;

  /// Optional string option with default.
  [[nodiscard]] std::string get_or(const std::string& key, const std::string& fallback) const;

  /// Numeric option; throws std::invalid_argument when absent or non-numeric.
  [[nodiscard]] double get_double(const std::string& key) const;
  [[nodiscard]] double get_double_or(const std::string& key, double fallback) const;
  [[nodiscard]] int get_int_or(const std::string& key, int fallback) const;

  /// Comma-separated list of doubles, e.g. "0,0.5,1".
  [[nodiscard]] std::vector<double> get_double_list(const std::string& key) const;

  /// Options that were provided but never read (for typo warnings).
  [[nodiscard]] std::vector<std::string> keys() const;

 private:
  std::string command_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> flags_;
};

/// Parses "a,b,c" into doubles. Throws std::invalid_argument on bad cells.
[[nodiscard]] std::vector<double> parse_double_list(const std::string& text);

}  // namespace subsidy::cli
