// The subsidy_cli subcommands, factored out of main() so that each command is
// unit-testable against an in-memory stream.
//
//   evaluate        solved state at (market, price, subsidies)
//   nash            Nash equilibrium + KKT report at (market, price, cap)
//   sweep           price sweep at fixed cap -> CSV
//   optimize-price  revenue-maximizing price at a cap
//   policy          policy-cap sweep (fixed or monopoly price response)
//   surplus         welfare decomposition at an equilibrium
//   generate-trace  synthetic usage records -> CSV
//   calibrate       fit alpha/beta/v from a trace CSV
//   validate        Assumption 1/2 conformance report
//   scenario        declarative scenario files: run <file|name>, list, print
//   serve           line-JSON request/response daemon on stdin/stdout
//   client          build (or --run) one serve-protocol request line
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "subsidy/cli/args.hpp"

namespace subsidy::cli {

/// Dispatches a parsed command line; writes human-readable output to `out`
/// and returns a process exit code (0 on success, 2 on usage errors).
int run_command(const Args& args, std::ostream& out, std::ostream& err);

/// Full usage text.
[[nodiscard]] std::string usage();

/// The `serve` verb against explicit streams (unit tests drive it with
/// stringstreams; run_cli passes std::cin). `argv` is the full command line
/// starting at "serve". One request per line on `in`; a blank line is a
/// batch boundary (everything since the previous boundary is served as one
/// coalesced batch); EOF flushes the final batch. One response line per
/// request on `out`, in request order.
int run_serve(const std::vector<std::string>& argv, std::istream& in, std::ostream& out,
              std::ostream& err);

/// Convenience for main(): parse + dispatch with error reporting.
int run_cli(const std::vector<std::string>& argv, std::ostream& out, std::ostream& err);

}  // namespace subsidy::cli
