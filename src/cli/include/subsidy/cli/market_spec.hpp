// Textual market specifications for the CLI:
//   "section3"                          — the paper's Section 3 market,
//   "section5"                          — the paper's Section 5 market,
//   "exp:mu=1;alpha=1,2;beta=2,1;v=1,1" — custom exponential-family market
//                                          (alpha/beta/v lists equal length),
// with an optional "+delay" / "+power:<gamma>" suffix swapping the
// utilization model (e.g. "section5+delay").
#pragma once

#include <string>

#include "subsidy/econ/market.hpp"

namespace subsidy::cli {

/// Parses a market specification. Throws std::invalid_argument with a
/// human-readable message on malformed specs.
[[nodiscard]] econ::Market parse_market_spec(const std::string& spec);

/// One-line description of the accepted grammar (for --help output).
[[nodiscard]] std::string market_spec_help();

}  // namespace subsidy::cli
