// Textual market specifications for the CLI:
//   "section3"                          — the paper's Section 3 market,
//   "section5"                          — the paper's Section 5 market,
//   "exp:mu=1;alpha=1,2;beta=2,1;v=1,1" — custom market (beta/v lists equal
//                                          length),
// where named bases take an optional trailing "+delay" / "+power:<gamma>"
// suffix swapping the utilization model (e.g. "section5+delay").
//
// The exp: body shares the scenario-file grammar
// (subsidy/scenario/spec_grammar.hpp), so there is one market grammar:
//   - beta entries may select a per-provider throughput family:
//     "beta=2,1.5+power,3+delay" or the equivalent "+power:<beta>" form;
//   - "demand=<spec>" replaces "alpha=" with any demand family, one spec for
//     all providers or '|'-separated per-provider specs, e.g.
//     "demand=logit:k=4,t0=0.5|iso:eps=2";
//   - "util=<linear|delay|power:<gamma>>" sets the utilization model (the
//     trailing +suffix form is reserved for named bases, so a '+' inside an
//     exp: body is always a per-provider override).
#pragma once

#include <string>

#include "subsidy/econ/market.hpp"

namespace subsidy::cli {

/// Parses a market specification. Throws std::invalid_argument with a
/// human-readable message on malformed specs.
[[nodiscard]] econ::Market parse_market_spec(const std::string& spec);

/// One-line description of the accepted grammar (for --help output).
[[nodiscard]] std::string market_spec_help();

}  // namespace subsidy::cli
