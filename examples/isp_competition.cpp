// Scenario: subsidization when two access ISPs compete (the paper's
// Section 6 conjecture, implemented in core::duopoly).
//
// A region is served by two ISPs; CPs can sponsor usage fees identically on
// both networks. This example walks through:
//   1. the competitive pricing equilibrium with and without sponsorship;
//   2. how market shares shift when one ISP expands capacity;
//   3. why competition plus subsidization is the paper's preferred end state
//      (low prices from competition, high utilization from sponsorship).
#include <iostream>

#include "subsidy/core/duopoly.hpp"
#include "subsidy/econ/market.hpp"
#include "subsidy/io/table.hpp"

namespace core = subsidy::core;
namespace econ = subsidy::econ;
namespace io = subsidy::io;

int main() {
  // Three CP classes (video / social / startup) served by two regional ISPs.
  const econ::Market base = econ::Market::exponential(
      1.0, {2.0, 5.0, 3.0}, {3.0, 2.0, 4.0}, {1.0, 0.8, 0.5});

  core::DuopolyPricingOptions options;
  options.grid_points = 11;
  options.refine_tolerance = 5e-3;
  options.tolerance = 5e-3;

  std::cout << "=== 1. Pricing equilibrium, sponsored vs unsponsored ===\n\n";
  io::ConsoleTable pricing({"regime", "p_A", "p_B", "R_A", "R_B", "welfare", "subscribers"});
  for (double q : {0.0, 0.8}) {
    const core::DuopolyModel model(core::DuopolySpec(base, 0.6, 0.6));
    const core::DuopolyPricingResult eq = core::DuopolyPricingGame(model, q, options).solve();
    pricing.add_row({q == 0.0 ? "no sponsorship" : "sponsored (q=0.8)",
                     io::format_double(eq.price_a, 3), io::format_double(eq.price_b, 3),
                     io::format_double(eq.state.revenue_a, 4),
                     io::format_double(eq.state.revenue_b, 4),
                     io::format_double(eq.state.welfare, 4),
                     io::format_double(eq.state.total_subscribers(), 3)});
  }
  pricing.print(std::cout);
  std::cout << "\nsponsorship raises both ISPs' revenues and the content welfare while\n"
               "competition keeps prices in check — the paper's preferred end state.\n\n";

  std::cout << "=== 2. Capacity race: ISP A doubles its network ===\n\n";
  io::ConsoleTable race({"capacities", "p_A", "p_B", "share_A", "R_A", "R_B"});
  for (double mu_a : {0.6, 1.2}) {
    const core::DuopolyModel model(core::DuopolySpec(base, mu_a, 0.6));
    const core::DuopolyPricingResult eq =
        core::DuopolyPricingGame(model, 0.8, options).solve();
    double subs_a = 0.0;
    double subs_total = 0.0;
    for (double m : eq.state.population_a) subs_a += m;
    subs_total = eq.state.total_subscribers();
    race.add_row({io::format_double(mu_a, 1) + " / 0.6", io::format_double(eq.price_a, 3),
                  io::format_double(eq.price_b, 3),
                  io::format_double(subs_a / subs_total, 3),
                  io::format_double(eq.state.revenue_a, 4),
                  io::format_double(eq.state.revenue_b, 4)});
  }
  race.print(std::cout);
  std::cout << "\ncapacity is the competitive weapon: the bigger network carries more\n"
               "sponsored traffic at lower congestion and takes revenue share —\n"
               "the investment incentive the paper wants subsidization to finance.\n\n";

  std::cout << "=== 3. A CP's view: sponsorship reach across both networks ===\n\n";
  const core::DuopolyModel model(core::DuopolySpec(base, 0.6, 0.6));
  const core::DuopolyPricingResult eq = core::DuopolyPricingGame(model, 0.8, options).solve();
  const char* names[] = {"video", "social", "startup"};
  io::ConsoleTable cps({"CP", "subsidy", "users on A", "users on B", "utility"});
  for (std::size_t i = 0; i < 3; ++i) {
    cps.add_row({names[i], io::format_double(eq.state.subsidies[i], 3),
                 io::format_double(eq.state.population_a[i], 3),
                 io::format_double(eq.state.population_b[i], 3),
                 io::format_double(eq.state.cp_utilities[i], 4)});
  }
  cps.print(std::cout);
  std::cout << "\none subsidy, two networks: the neutrality norm (identical sponsorship\n"
               "everywhere) keeps the platform uniform for CPs of every size.\n";
  return 0;
}
