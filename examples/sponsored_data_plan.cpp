// Scenario: an AT&T-style "sponsored data" launch (paper Sections 1 & 6).
//
// A mobile ISP with usage-based pricing opens a sponsored-data program —
// content providers may pay the usage fees their traffic incurs (full
// subsidization corresponds to a policy cap q >= p). This example examines:
//   * who sponsors and how much, across program generosity levels;
//   * the incumbent-vs-startup asymmetry the FCC worried about;
//   * whether venture funding (raising the startup's effective profitability)
//     lets a startup compete, per the paper's Section 6 discussion.
#include <iostream>

#include "subsidy/core/core.hpp"
#include "subsidy/econ/market.hpp"
#include "subsidy/io/table.hpp"

namespace core = subsidy::core;
namespace econ = subsidy::econ;
namespace io = subsidy::io;

namespace {

econ::Market mobile_market(double startup_profitability) {
  // Incumbent video platform, incumbent social network, and a startup video
  // service with the same traffic profile as the incumbent but lower
  // per-unit profitability.
  return econ::Market::exponential(
      /*capacity=*/1.0,
      /*alphas=*/{3.0, 5.0, 3.0},
      /*betas=*/{4.0, 2.0, 4.0},
      /*profits=*/{1.0, 1.2, startup_profitability});
}

}  // namespace

int main() {
  const double price = 0.7;  // usage price per GB-equivalent

  std::cout << "=== Sponsored data program: sponsorship by program cap ===\n\n";
  io::ConsoleTable sweep({"cap q", "s(incumbent)", "s(social)", "s(startup)",
                          "ISP revenue", "startup throughput"});
  const econ::Market market = mobile_market(0.35);
  std::vector<double> warm;
  double startup_base_throughput = 0.0;
  for (double q : {0.0, 0.2, 0.4, 0.7}) {
    const core::SubsidizationGame game(market, price, q);
    const core::NashResult nash = core::solve_nash(game, warm);
    warm = nash.subsidies;
    if (q == 0.0) startup_base_throughput = nash.state.providers[2].throughput;
    sweep.add_row({io::format_double(q, 2), io::format_double(nash.subsidies[0], 3),
                   io::format_double(nash.subsidies[1], 3),
                   io::format_double(nash.subsidies[2], 3),
                   io::format_double(nash.state.revenue, 4),
                   io::format_double(nash.state.providers[2].throughput, 4)});
  }
  sweep.print(std::cout);
  std::cout << "\nq = 0.7 means full sponsorship (the user pays nothing for\n"
               "sponsored traffic) — AT&T's plan as a special case.\n\n";

  std::cout << "=== The startup squeeze ===\n\n";
  const core::SubsidizationGame full(market, price, price);
  const core::NashResult nash_full = core::solve_nash(full);
  const double startup_sponsored_throughput = nash_full.state.providers[2].throughput;
  std::cout << "startup throughput without program: " << startup_base_throughput
            << "\nstartup throughput under full sponsorship: " << startup_sponsored_throughput
            << "\n";
  if (startup_sponsored_throughput < startup_base_throughput) {
    std::cout << "-> the startup LOSES throughput when rivals sponsor: it cannot\n"
                 "   afford to match their subsidies (profitability too low).\n\n";
  }

  std::cout << "=== Venture funding to the rescue (paper, Section 6) ===\n\n";
  io::ConsoleTable vc({"startup v", "startup subsidy", "startup users",
                       "startup throughput", "startup utility"});
  for (double v : {0.35, 0.6, 0.9, 1.2}) {
    const econ::Market funded = mobile_market(v);
    const core::SubsidizationGame game(funded, price, price);
    const core::NashResult nash = core::solve_nash(game);
    vc.add_row({io::format_double(v, 2), io::format_double(nash.subsidies[2], 3),
                io::format_double(nash.state.providers[2].population, 3),
                io::format_double(nash.state.providers[2].throughput, 4),
                io::format_double(nash.state.providers[2].utility, 4)});
  }
  vc.print(std::cout);
  std::cout << "\nTheorem 5 at work: higher profitability (venture subsidy budget)\n"
               "raises the startup's equilibrium sponsorship, which wins back users\n"
               "and throughput — competition happens above the neutral network.\n\n";

  std::cout << "=== Non-discrimination check ===\n\n";
  // The subsidization option must be identical for all CPs: verify that two
  // CPs with identical primitives end up with identical equilibrium outcomes.
  const econ::Market symmetric = mobile_market(1.0);  // startup == incumbent video
  const core::NashResult nash_sym =
      core::solve_nash(core::SubsidizationGame(symmetric, price, price));
  const double diff =
      std::abs(nash_sym.subsidies[0] - nash_sym.subsidies[2]) +
      std::abs(nash_sym.state.providers[0].throughput - nash_sym.state.providers[2].throughput);
  std::cout << "identical CPs, outcome difference: " << diff
            << (diff < 1e-6 ? "  (platform treats them identically)\n" : "  (ASYMMETRY!)\n");
  return diff < 1e-6 ? 0 : 1;
}
