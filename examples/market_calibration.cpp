// Scenario: calibrating the model from (synthetic) sponsored-data market
// records — the measurement pipeline the paper anticipates in Section 6
// ("with the emerging sponsored data plan from AT&T, we expect this type of
// market data could be available for regulatory authorities").
//
//   1. a ground-truth market generates a noisy observation window
//      (per-provider daily usage records under a wandering posted price);
//   2. the estimator recovers every provider's demand elasticity alpha,
//      congestion elasticity beta and profitability v by regression;
//   3. the rebuilt model answers the regulator's question — what would
//      deregulating subsidization do to revenue and welfare? — and the answer
//      is compared against the (normally unknowable) ground truth.
#include <iostream>

#include "subsidy/core/core.hpp"
#include "subsidy/econ/market.hpp"
#include "subsidy/io/table.hpp"
#include "subsidy/market/estimator.hpp"
#include "subsidy/market/scenarios.hpp"
#include "subsidy/market/traces.hpp"

namespace core = subsidy::core;
namespace econ = subsidy::econ;
namespace io = subsidy::io;
namespace market = subsidy::market;
namespace num = subsidy::num;

int main() {
  // --- 1. Observation window over the ground-truth market ------------------
  const econ::Market truth = market::section5_market();
  market::TraceConfig config;
  config.days = 365;               // one year of billing records
  config.measurement_noise = 0.04; // ~4% lognormal measurement error
  num::Rng rng(20140610);          // the paper's arXiv date as seed
  const std::vector<market::UsageRecord> trace = market::generate_trace(truth, config, rng);
  std::cout << "observation window: " << config.days << " days, " << trace.size()
            << " provider-day records, noise sigma " << config.measurement_noise << "\n\n";

  // --- 2. Parameter recovery ------------------------------------------------
  const market::ParameterEstimator estimator;
  const std::vector<market::EstimatedCp> estimates = estimator.fit(trace);
  const auto params = market::section5_parameters();

  io::ConsoleTable fit({"CP", "alpha true", "alpha est", "beta true", "beta est",
                        "v true", "v est", "R2(demand)"});
  for (const auto& est : estimates) {
    const auto& p = params[est.provider];
    fit.add_row({"cp" + std::to_string(est.provider), io::format_double(p.alpha, 2),
                 io::format_double(est.alpha, 3), io::format_double(p.beta, 2),
                 io::format_double(est.beta, 3), io::format_double(p.profitability, 2),
                 io::format_double(est.profitability, 3),
                 io::format_double(est.demand_r_squared, 4)});
  }
  fit.print(std::cout);
  const market::EstimationError err = market::compare_estimates(truth, estimates);
  std::cout << "\nworst relative errors: alpha " << io::format_double(err.max_alpha_error, 4)
            << ", beta " << io::format_double(err.max_beta_error, 4) << ", v "
            << io::format_double(err.max_profit_error, 4) << "\n\n";

  // --- 3. Policy question on the rebuilt model -----------------------------
  const econ::Market rebuilt = estimator.build_market(estimates, /*capacity=*/1.0);
  const double p = 0.8;  // current (regulated) access price

  io::ConsoleTable policy({"q", "R (estimated)", "R (truth)", "W (estimated)", "W (truth)"});
  std::vector<double> warm_est;
  std::vector<double> warm_true;
  for (double q : {0.0, 0.5, 1.0, 2.0}) {
    const core::NashResult est_nash =
        core::solve_nash(core::SubsidizationGame(rebuilt, p, q), warm_est);
    const core::NashResult true_nash =
        core::solve_nash(core::SubsidizationGame(truth, p, q), warm_true);
    warm_est = est_nash.subsidies;
    warm_true = true_nash.subsidies;
    policy.add_row({io::format_double(q, 1), io::format_double(est_nash.state.revenue, 4),
                    io::format_double(true_nash.state.revenue, 4),
                    io::format_double(est_nash.state.welfare, 4),
                    io::format_double(true_nash.state.welfare, 4)});
  }
  policy.print(std::cout);

  std::cout << "\nthe calibrated model reproduces the ground truth's policy ranking:\n"
               "deregulation raises both ISP revenue and content welfare at the\n"
               "regulated price — a conclusion a regulator could reach from billing\n"
               "records alone, without access to the providers' private economics.\n";
  return err.max_alpha_error < 0.15 && err.max_beta_error < 0.2 ? 0 : 1;
}
