// Scenario: a regulator weighing subsidization deregulation against access-
// price regulation (paper Sections 5-6).
//
// The paper's policy recipe: promote subsidization competition, but regulate
// the access price if the ISP market is not competitive. This example runs a
// regulator's decision workflow on the paper's Section 5 market:
//   1. measure welfare under four regimes (status quo / deregulated
//      subsidies x monopoly / regulated price);
//   2. trace the welfare cost of monopoly pricing as deregulation proceeds;
//   3. search for the welfare-maximizing price cap.
#include <iostream>

#include "subsidy/core/core.hpp"
#include "subsidy/io/table.hpp"
#include "subsidy/market/scenarios.hpp"
#include "subsidy/numerics/grid.hpp"

namespace core = subsidy::core;
namespace econ = subsidy::econ;
namespace io = subsidy::io;
namespace market = subsidy::market;
namespace num = subsidy::num;

int main() {
  const econ::Market mkt = market::section5_market();

  core::PriceSearchOptions search;
  search.price_min = 0.05;
  search.price_max = 2.5;
  search.grid_points = 21;
  search.refine_tolerance = 1e-4;

  const double regulated_price = 0.55;

  std::cout << "=== 1. Welfare under four regulatory regimes ===\n\n";
  io::ConsoleTable regimes({"regime", "price", "ISP revenue", "welfare"});
  auto add_regime = [&](const std::string& name, const core::PriceResponse& response,
                        double q) {
    const core::PolicyAnalyzer analyzer(mkt, response);
    const core::PolicyPoint point = analyzer.evaluate(q);
    regimes.add_row({name, io::format_double(point.price, 3),
                     io::format_double(point.state.revenue, 4),
                     io::format_double(point.state.welfare, 4)});
    return point.state.welfare;
  };
  add_regime("status quo, monopoly price", core::PriceResponse::monopoly(search), 0.0);
  add_regime("status quo, regulated price", core::PriceResponse::fixed(regulated_price), 0.0);
  const double w_dereg_monopoly =
      add_regime("deregulated, monopoly price", core::PriceResponse::monopoly(search), 2.0);
  const double w_dereg_regulated = add_regime("deregulated, regulated price",
                                              core::PriceResponse::fixed(regulated_price), 2.0);
  regimes.print(std::cout);
  std::cout << "\nderegulation helps in both price regimes, but the monopoly price\n"
               "forfeits " << io::format_double(
                   100.0 * (1.0 - w_dereg_monopoly / w_dereg_regulated), 1)
            << "% of the achievable welfare.\n\n";

  std::cout << "=== 2. Welfare cost of monopoly pricing across policy caps ===\n\n";
  io::ConsoleTable cost({"q", "monopoly W", "regulated W", "forfeited %"});
  for (double q : {0.0, 0.5, 1.0, 2.0}) {
    const core::PolicyAnalyzer monopoly(mkt, core::PriceResponse::monopoly(search));
    const core::PolicyAnalyzer regulated(mkt, core::PriceResponse::fixed(regulated_price));
    const double wm = monopoly.welfare(q);
    const double wr = regulated.welfare(q);
    cost.add_row({io::format_double(q, 1), io::format_double(wm, 4),
                  io::format_double(wr, 4), io::format_double(100.0 * (1.0 - wm / wr), 1)});
  }
  cost.print(std::cout);

  std::cout << "\n=== 3. Choosing a price cap (q = 2) ===\n\n";
  io::ConsoleTable caps({"price cap", "effective price", "welfare", "ISP revenue"});
  double best_cap = 0.0;
  double best_welfare = -1.0;
  for (double cap : num::linspace(0.2, 1.4, 7)) {
    const core::PolicyAnalyzer analyzer(mkt,
                                        core::PriceResponse::capped_monopoly(cap, search));
    const core::PolicyPoint point = analyzer.evaluate(2.0);
    caps.add_row({io::format_double(cap, 2), io::format_double(point.price, 3),
                  io::format_double(point.state.welfare, 4),
                  io::format_double(point.state.revenue, 4)});
    if (point.state.welfare > best_welfare) {
      best_welfare = point.state.welfare;
      best_cap = cap;
    }
  }
  caps.print(std::cout);
  std::cout << "\nwelfare-maximizing cap in this sweep: " << best_cap
            << "\n(note the trade-off: tighter caps raise welfare but cut ISP revenue —\n"
               "the investment-incentive argument bounds how hard to regulate; see\n"
               "the capacity_planning example for the other side of that coin.)\n";
  return 0;
}
