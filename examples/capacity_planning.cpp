// Scenario: an access ISP's capacity-planning desk under a sponsored-data
// regime (the paper's Section 6 future-work direction, implemented).
//
// Subsidization raises utilization and revenue (Corollary 1); this example
// quantifies the investment side:
//   1. the profit-maximizing capacity with and without subsidization,
//   2. a multi-year reinvestment plan that channels the deregulation revenue
//      gain into capacity,
//   3. the effect of the build-out on the congestion-sensitive providers
//      that deregulation initially hurt (Figure 10's losers).
#include <iostream>

#include "subsidy/core/capacity.hpp"
#include "subsidy/core/core.hpp"
#include "subsidy/io/table.hpp"
#include "subsidy/market/scenarios.hpp"

namespace core = subsidy::core;
namespace econ = subsidy::econ;
namespace io = subsidy::io;
namespace market = subsidy::market;

int main() {
  const econ::Market mkt = market::section5_market();

  core::CapacityPlanOptions options;
  options.capacity_min = 0.5;
  options.capacity_max = 4.0;
  options.grid_points = 12;
  options.refine_tolerance = 1e-3;
  options.price_search.price_min = 0.05;
  options.price_search.price_max = 2.5;
  options.price_search.grid_points = 15;
  const core::CapacityPlanner planner(mkt, options);
  const double unit_cost = 0.12;  // cost per unit capacity per period

  std::cout << "=== 1. Profit-maximizing capacity, with vs without subsidization ===\n\n";
  io::ConsoleTable plans({"regime", "capacity", "price", "revenue", "profit", "utilization"});
  for (double q : {0.0, 2.0}) {
    const core::CapacityPlan plan = planner.optimize(q, unit_cost);
    plans.add_row({q == 0.0 ? "regulated (q=0)" : "deregulated (q=2)",
                   io::format_double(plan.capacity, 3), io::format_double(plan.price, 3),
                   io::format_double(plan.revenue, 4), io::format_double(plan.profit, 4),
                   io::format_double(plan.state.utilization, 3)});
  }
  plans.print(std::cout);
  std::cout << "\nderegulation shifts the whole profit frontier up: the same network\n"
               "earns more, so more capacity clears the ISP's hurdle rate.\n\n";

  std::cout << "=== 2. Reinvestment plan (q = 2, 40% of the gain reinvested) ===\n\n";
  const auto path = planner.reinvestment_path(/*policy_cap=*/2.0, /*cost_per_unit=*/0.5,
                                              /*reinvest_fraction=*/0.4, /*rounds=*/6);
  io::ConsoleTable table({"year", "capacity", "revenue", "utilization", "welfare"});
  for (const auto& step : path) {
    table.add_row({std::to_string(step.round), io::format_double(step.capacity, 3),
                   io::format_double(step.revenue, 4), io::format_double(step.utilization, 3),
                   io::format_double(step.welfare, 4)});
  }
  table.print(std::cout);

  std::cout << "\n=== 3. Does the build-out rescue the congestion losers? ===\n\n";
  const auto params = market::section5_parameters();
  std::size_t loser = 0;
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (params[i].alpha == 2.0 && params[i].beta == 5.0 && params[i].profitability == 0.5) {
      loser = i;
    }
  }
  const double p = 0.8;
  const core::NashResult before =
      core::solve_nash(core::SubsidizationGame(mkt, p, 0.0));
  const core::NashResult after_dereg =
      core::solve_nash(core::SubsidizationGame(mkt, p, 2.0));
  const core::NashResult after_buildout = core::solve_nash(
      core::SubsidizationGame(mkt.with_capacity(path.back().capacity), p, 2.0));

  io::ConsoleTable loser_table({"stage", "loser throughput", "system utilization"});
  loser_table.add_row({"before deregulation",
                       io::format_double(before.state.providers[loser].throughput, 4),
                       io::format_double(before.state.utilization, 3)});
  loser_table.add_row({"deregulated, old capacity",
                       io::format_double(after_dereg.state.providers[loser].throughput, 4),
                       io::format_double(after_dereg.state.utilization, 3)});
  loser_table.add_row({"deregulated, after build-out",
                       io::format_double(after_buildout.state.providers[loser].throughput, 4),
                       io::format_double(after_buildout.state.utilization, 3)});
  loser_table.print(std::cout);
  std::cout << "\nthe short-run harm to congestion-sensitive startups is a capacity\n"
               "problem, not a subsidization problem — exactly the paper's reading.\n";
  return 0;
}
