// Quickstart: build a market, inspect the status-quo one-sided equilibrium,
// allow subsidization, solve the Nash equilibrium and compare.
//
//   $ ./examples/quickstart
//
// Walks through the library's three core steps:
//   1. describe a market (capacity, utilization model, CP classes),
//   2. evaluate the no-subsidy baseline at an ISP price,
//   3. solve the subsidization competition game and read the outcome.
#include <iostream>

#include "subsidy/core/core.hpp"
#include "subsidy/econ/market.hpp"
#include "subsidy/io/table.hpp"

namespace core = subsidy::core;
namespace econ = subsidy::econ;
namespace io = subsidy::io;

int main() {
  // --- 1. Describe a market -------------------------------------------------
  // Three content-provider classes sharing one access ISP of capacity mu = 1:
  //   "video"  — congestion-sensitive users, profitable (think streaming);
  //   "social" — price-sensitive users, very profitable per byte;
  //   "startup"— price-tolerant niche users, low profitability.
  // Demand m(t) = e^{-alpha t}, per-user rate lambda(phi) = e^{-beta phi},
  // utilization Phi = theta / mu — the paper's evaluation family.
  const econ::Market market = econ::Market::exponential(
      /*capacity=*/1.0,
      /*alphas=*/{2.0, 5.0, 1.5},
      /*betas=*/{5.0, 2.0, 3.0},
      /*profits=*/{1.0, 1.2, 0.4});

  const auto report = market.validate();
  std::cout << "market validates against Assumptions 1 & 2: "
            << (report.ok ? "yes" : "NO") << "\n\n";

  // --- 2. Status-quo: one-sided pricing, no subsidies ----------------------
  const double price = 0.8;  // ISP's per-unit usage price
  const core::ModelEvaluator evaluator(market);
  const core::SystemState baseline = evaluator.evaluate_unsubsidized(price);

  std::cout << "one-sided baseline at p = " << price << ":\n"
            << "  utilization phi  = " << baseline.utilization << "\n"
            << "  total throughput = " << baseline.aggregate_throughput << "\n"
            << "  ISP revenue      = " << baseline.revenue << "\n"
            << "  CP welfare       = " << baseline.welfare << "\n\n";

  // --- 3. Allow subsidies up to q and solve the competition game -----------
  const double policy_cap = 1.0;
  const core::SubsidizationGame game(market, price, policy_cap);
  const core::NashResult nash = core::solve_nash(game);
  std::cout << "subsidization game (q = " << policy_cap << ") solved in "
            << nash.iterations << " iterations, residual " << nash.residual << "\n";

  // Verify the Theorem 3 equilibrium conditions before trusting the output.
  const core::KktReport kkt = core::verify_kkt(game, nash.subsidies);
  std::cout << "KKT verified: " << (kkt.satisfied ? "yes" : "NO")
            << " (max residual " << kkt.max_residual << ")\n\n";

  const char* names[] = {"video", "social", "startup"};
  io::ConsoleTable table({"CP", "subsidy", "user price", "population", "throughput",
                          "utility", "baseline thpt"});
  for (std::size_t i = 0; i < nash.state.providers.size(); ++i) {
    const auto& cp = nash.state.providers[i];
    table.add_row({names[i], io::format_double(cp.subsidy, 3),
                   io::format_double(cp.effective_price, 3),
                   io::format_double(cp.population, 3),
                   io::format_double(cp.throughput, 3), io::format_double(cp.utility, 3),
                   io::format_double(baseline.providers[i].throughput, 3)});
  }
  table.print(std::cout);

  std::cout << "\nwith subsidization:\n"
            << "  utilization " << baseline.utilization << " -> " << nash.state.utilization
            << "\n  ISP revenue " << baseline.revenue << " -> " << nash.state.revenue
            << "\n  CP welfare  " << baseline.welfare << " -> " << nash.state.welfare
            << "\n";
  std::cout << "\nCorollary 1 in action: deregulating subsidies raised both the\n"
               "ISP's utilization and revenue without touching the neutral network.\n";
  return kkt.satisfied ? 0 : 1;
}
